//! The closed-loop replay driver.
//!
//! A [`Trace`] replays against three targets — the in-process
//! [`QueryEngine`], a daemon's framed TCP port, a daemon's HTTP bulk
//! endpoint — and all three produce the same [`ReplayOutcome`] shape:
//! per-segment lookup/match/drop counts plus an **answer digest**.
//!
//! The digest is the replay driver's load-bearing idea: every target
//! normalizes each answer to the same `(prefix_len, asn, class_byte)`
//! tuple (or a miss) and folds them, **in query order**, into an
//! FNV-1a 64 hash. Client count, frame size, and transport then cannot
//! affect the digest — only the answers can — so "this daemon, across
//! a live hot-patch, answered exactly like a cold post-patch engine"
//! is a single `u64` comparison.
//!
//! Network replays are closed-loop: each of `clients` worker threads
//! owns one connection and keeps exactly one frame in flight, the same
//! discipline as `bench_serve`. Per-frame round-trip latencies are
//! recorded into the observer's `replay.frame.ns` histogram; the
//! engine path records per-lookup latency via the engine's own
//! `serve.lookup.ns`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;

use cellobs::Observer;
use cellserve::{IpKey, LookupMatch, MatchedPrefix, QueryEngine};
use cellserved::{ClientPolicy, FramedClient, ServedError, WireAnswer};

use crate::trace::Trace;

/// FNV-1a 64 offset basis (same constants as `cellserve::content_hash`).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A normalized answer: `(prefix_len, asn, class_byte)` for a hit,
/// `None` for a miss. Every replay target reduces to this.
pub type Answer = Option<(u8, u32, u8)>;

/// Incremental FNV-1a 64 over a canonical answer byte stream: `0` for
/// a miss; `1, prefix_len, asn (LE), class_byte` for a hit.
///
/// Hashing the concatenation of two streams equals continuing one
/// digest across both, so per-segment digests and the whole-trace
/// digest stay consistent.
#[derive(Clone, Copy, Debug)]
pub struct AnswerDigest(u64);

impl AnswerDigest {
    /// A fresh digest.
    pub fn new() -> AnswerDigest {
        AnswerDigest(FNV_OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Fold one normalized answer.
    pub fn push(&mut self, answer: Answer) {
        match answer {
            None => self.byte(0),
            Some((len, asn, class)) => {
                self.byte(1);
                self.byte(len);
                for b in asn.to_le_bytes() {
                    self.byte(b);
                }
                self.byte(class);
            }
        }
    }

    /// The digest value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Default for AnswerDigest {
    fn default() -> Self {
        AnswerDigest::new()
    }
}

/// Normalize an engine answer.
pub fn normalize_engine(m: &Option<LookupMatch>) -> Answer {
    m.as_ref().map(|m| {
        let len = match m.prefix {
            MatchedPrefix::V4(net) => net.len(),
            MatchedPrefix::V6(net) => net.len(),
        };
        (len, m.label.asn.value(), m.label.class.to_byte())
    })
}

/// Normalize a framed-protocol answer.
pub fn normalize_wire(a: &Option<WireAnswer>) -> Answer {
    a.as_ref().map(|w| (w.prefix_len, w.asn, w.class.to_byte()))
}

/// Why a replay failed outright (distinct from *dropped* queries,
/// which are counted, not fatal).
#[derive(Debug)]
pub enum ReplayError {
    /// A socket operation failed.
    Io(std::io::Error),
    /// The framed protocol client reported an error.
    Served(cellserved::ServedError),
    /// The peer sent something unparseable (bad HTTP status, malformed
    /// CSV row, short response).
    Protocol(String),
    /// The segment-boundary hook (e.g. "publish the delta and wait for
    /// the generation bump") failed.
    Hook(String),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Io(e) => write!(f, "replay I/O error: {e}"),
            ReplayError::Served(e) => write!(f, "replay protocol client error: {e}"),
            ReplayError::Protocol(why) => write!(f, "replay protocol error: {why}"),
            ReplayError::Hook(why) => write!(f, "segment hook failed: {why}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<std::io::Error> for ReplayError {
    fn from(e: std::io::Error) -> Self {
        ReplayError::Io(e)
    }
}

impl From<cellserved::ServedError> for ReplayError {
    fn from(e: cellserved::ServedError) -> Self {
        ReplayError::Served(e)
    }
}

/// Closed-loop shape of a network replay.
#[derive(Clone, Copy, Debug)]
pub struct ReplayConfig {
    /// Concurrent connections, each with one frame in flight.
    pub clients: usize,
    /// Queries per request frame.
    pub frame: usize,
    /// Client resilience: timeouts, reconnect backoff, and the retry
    /// budget both transports spend before a frame failure becomes
    /// fatal. Retried frames re-send the whole batch (lookups are
    /// idempotent), so the answer digest is transport-failure-proof:
    /// a daemon restart mid-replay changes `replay.retries` and
    /// `replay.reconnects`, never the digest.
    pub policy: ClientPolicy,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            clients: 4,
            frame: 512,
            policy: ClientPolicy::default(),
        }
    }
}

/// One segment's replay result.
#[derive(Clone, Debug)]
pub struct SegmentOutcome {
    /// The segment's CELLDELT epoch.
    pub epoch: u64,
    /// Queries issued.
    pub lookups: u64,
    /// Answers that matched a served prefix.
    pub matched: u64,
    /// Queries that never got an answer (must be 0 on a healthy stack).
    pub dropped: u64,
    /// FNV-1a digest of this segment's answers, in query order.
    pub answer_digest: u64,
}

/// A whole trace's replay result.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// `"engine"`, `"tcp"`, or `"http"`.
    pub mode: &'static str,
    /// Replay wall clock, summed over segments (hot-patch hooks at
    /// segment boundaries are excluded — waiting for a generation bump
    /// is not throughput).
    pub wall_secs: f64,
    /// Total queries issued.
    pub lookups: u64,
    /// Total matches.
    pub matched: u64,
    /// Total unanswered queries.
    pub dropped: u64,
    /// Digest over all segments' answers, in trace order.
    pub answer_digest: u64,
    /// Engine-mode cache accounting (all zero for network modes; the
    /// daemon's own `serve.cache.*` counters cover those).
    pub cache_hits: u64,
    /// Engine-mode cache misses.
    pub cache_misses: u64,
    /// Engine-mode uncached (no-prefix-family) lookups.
    pub uncached: u64,
    /// Per-segment outcomes, in trace order.
    pub segments: Vec<SegmentOutcome>,
}

impl ReplayOutcome {
    /// Lookups per second over the replay wall clock.
    pub fn lookups_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.lookups as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Replay directly against [`QueryEngine`], resolving the index for
/// each segment's epoch through `index_for` (a constant function for
/// single-segment presets; an epoch → artifact map for `churn`).
/// Generic over the served representation: any
/// [`cellserve::IndexView`] — an owned [`FrozenIndex`], a zero-copy
/// [`cellserve::ArtifactHandle`] — replays identically.
///
/// The engine cannot drop queries, so `dropped` is always 0 here; the
/// field exists so all three modes share one outcome shape.
pub fn replay_engine<V, F>(trace: &Trace, obs: &Observer, mut index_for: F) -> ReplayOutcome
where
    V: cellserve::IndexView + Send + Sync,
    F: FnMut(u64) -> Arc<V>,
{
    let mut segments = Vec::with_capacity(trace.segments.len());
    let mut total = AnswerDigest::new();
    let mut outcome = ReplayOutcome {
        mode: "engine",
        wall_secs: 0.0,
        lookups: 0,
        matched: 0,
        dropped: 0,
        answer_digest: 0,
        cache_hits: 0,
        cache_misses: 0,
        uncached: 0,
        segments: Vec::new(),
    };
    for seg in &trace.segments {
        let index = index_for(seg.epoch);
        let engine = QueryEngine::new(&index).with_observer(obs.clone());
        let t0 = Instant::now();
        let (answers, stats) = engine.run(&seg.queries);
        outcome.wall_secs += t0.elapsed().as_secs_f64();
        let mut digest = AnswerDigest::new();
        for a in &answers {
            let n = normalize_engine(a);
            digest.push(n);
            total.push(n);
        }
        outcome.lookups += stats.lookups;
        outcome.matched += stats.matched;
        outcome.cache_hits += stats.cache_hits;
        outcome.cache_misses += stats.cache_misses;
        outcome.uncached += stats.uncached;
        segments.push(SegmentOutcome {
            epoch: seg.epoch,
            lookups: stats.lookups,
            matched: stats.matched,
            dropped: (seg.queries.len() - answers.len()) as u64,
            answer_digest: digest.value(),
        });
    }
    outcome.answer_digest = total.value();
    outcome.segments = segments;
    outcome
}

/// One closed-loop worker's transport: issue one frame, get normalized
/// answers back.
trait LoopClient {
    fn frame(&mut self, ips: &[IpKey]) -> Result<Vec<Answer>, ReplayError>;

    /// `(retries, reconnects)` this client spent healing its transport;
    /// the driver folds them into the `replay.retries` /
    /// `replay.reconnects` counters.
    fn resilience(&self) -> (u64, u64) {
        (0, 0)
    }
}

struct TcpLoop(FramedClient);

impl LoopClient for TcpLoop {
    fn frame(&mut self, ips: &[IpKey]) -> Result<Vec<Answer>, ReplayError> {
        Ok(self.0.lookup(ips)?.iter().map(normalize_wire).collect())
    }

    fn resilience(&self) -> (u64, u64) {
        (self.0.retries(), self.0.reconnects())
    }
}

/// Replay against a daemon's framed TCP port. `on_segment` runs before
/// each segment's traffic (publish a delta, wait for the generation —
/// whatever the harness needs); its failure aborts the replay.
///
/// Each worker's [`FramedClient`] is lazy and policy-bearing
/// ([`ReplayConfig::policy`]): a daemon restart, a shed connection, or
/// a per-connection request cap mid-replay heals by reconnect + whole-
/// frame retry instead of failing the replay.
///
/// # Errors
/// [`ReplayError`] on connection, protocol, or hook failure.
pub fn replay_framed<H>(
    addr: SocketAddr,
    trace: &Trace,
    cfg: &ReplayConfig,
    obs: &Observer,
    on_segment: H,
) -> Result<ReplayOutcome, ReplayError>
where
    H: FnMut(u64) -> Result<(), ReplayError>,
{
    let policy = cfg.policy;
    run_closed_loop(trace, cfg, obs, "tcp", on_segment, &move || {
        Ok(TcpLoop(FramedClient::lazy(addr, policy)?))
    })
}

/// Replay against a daemon's HTTP endpoint via bulk `POST /lookup`
/// over one keep-alive connection per worker, with the same
/// reconnect/retry policy as the framed path ([`ReplayConfig::policy`]).
///
/// # Errors
/// [`ReplayError`] on connection, protocol, or hook failure.
pub fn replay_http<H>(
    addr: SocketAddr,
    trace: &Trace,
    cfg: &ReplayConfig,
    obs: &Observer,
    on_segment: H,
) -> Result<ReplayOutcome, ReplayError>
where
    H: FnMut(u64) -> Result<(), ReplayError>,
{
    let policy = cfg.policy;
    run_closed_loop(trace, cfg, obs, "http", on_segment, &move || {
        Ok(HttpLoop::new(addr, policy))
    })
}

/// The shared closed-loop driver: split each segment across `clients`
/// contiguous slices, one worker thread per slice, one frame in flight
/// per worker; reassemble answers in query order so the digest is
/// independent of client count and frame size.
fn run_closed_loop<C, H>(
    trace: &Trace,
    cfg: &ReplayConfig,
    obs: &Observer,
    mode: &'static str,
    mut on_segment: H,
    connect: &(dyn Fn() -> Result<C, ReplayError> + Sync),
) -> Result<ReplayOutcome, ReplayError>
where
    C: LoopClient,
    H: FnMut(u64) -> Result<(), ReplayError>,
{
    let clients = cfg.clients.max(1);
    let frame = cfg.frame.max(1);
    let mut outcome = ReplayOutcome {
        mode,
        wall_secs: 0.0,
        lookups: 0,
        matched: 0,
        dropped: 0,
        answer_digest: 0,
        cache_hits: 0,
        cache_misses: 0,
        uncached: 0,
        segments: Vec::new(),
    };
    let mut total = AnswerDigest::new();
    for seg in &trace.segments {
        on_segment(seg.epoch)?;
        let per = seg.queries.len().div_ceil(clients).max(1);
        let slices: Vec<&[IpKey]> = seg.queries.chunks(per).collect();
        let t0 = Instant::now();
        let results: Vec<Result<Vec<Answer>, ReplayError>> = std::thread::scope(|s| {
            let handles: Vec<_> = slices
                .iter()
                .map(|slice| {
                    s.spawn(move || {
                        let mut client = connect()?;
                        let run = (|| {
                            let mut answers = Vec::with_capacity(slice.len());
                            for ips in slice.chunks(frame) {
                                let sent = Instant::now();
                                answers.extend(client.frame(ips)?);
                                obs.histogram("replay.frame.ns")
                                    .record(sent.elapsed().as_nanos() as u64);
                            }
                            Ok(answers)
                        })();
                        // Resilience accounting survives even a failed
                        // slice: the counters say how hard the client
                        // worked before giving up.
                        let (retries, reconnects) = client.resilience();
                        if retries > 0 {
                            obs.counter("replay.retries").add(retries);
                        }
                        if reconnects > 0 {
                            obs.counter("replay.reconnects").add(reconnects);
                        }
                        run
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(ReplayError::Protocol("replay worker panicked".into()))
                    })
                })
                .collect()
        });
        outcome.wall_secs += t0.elapsed().as_secs_f64();
        let mut digest = AnswerDigest::new();
        let mut seg_out = SegmentOutcome {
            epoch: seg.epoch,
            lookups: seg.queries.len() as u64,
            matched: 0,
            dropped: 0,
            answer_digest: 0,
        };
        for (slice, result) in slices.iter().zip(results) {
            let answers = result?;
            seg_out.dropped += (slice.len().saturating_sub(answers.len())) as u64;
            for a in answers {
                if a.is_some() {
                    seg_out.matched += 1;
                }
                digest.push(a);
                total.push(a);
            }
        }
        seg_out.answer_digest = digest.value();
        outcome.lookups += seg_out.lookups;
        outcome.matched += seg_out.matched;
        outcome.dropped += seg_out.dropped;
        outcome.segments.push(seg_out);
    }
    outcome.answer_digest = total.value();
    Ok(outcome)
}

fn protocol(why: impl Into<String>) -> ReplayError {
    ReplayError::Protocol(why.into())
}

/// One parsed HTTP response: status code, whether the server asked to
/// close the connection, and the body.
struct HttpResponse {
    status: u16,
    close: bool,
    body: String,
}

/// Closed-loop HTTP worker: one keep-alive connection carrying bulk
/// `POST /lookup` requests back-to-back, with the same
/// reconnect-with-backoff + whole-frame retry semantics as
/// [`FramedClient`]. Transport failures and 503 sheds are retryable
/// (the daemon may be mid-restart or draining a connection at its
/// request cap); any other non-200 is a fatal protocol error.
struct HttpLoop {
    addr: SocketAddr,
    policy: ClientPolicy,
    conn: Option<BufReader<TcpStream>>,
    connected_once: bool,
    retries: u64,
    reconnects: u64,
}

impl HttpLoop {
    fn new(addr: SocketAddr, policy: ClientPolicy) -> HttpLoop {
        HttpLoop {
            addr,
            policy,
            conn: None,
            connected_once: false,
            retries: 0,
            reconnects: 0,
        }
    }

    fn ensure_connected(&mut self) -> std::io::Result<()> {
        if self.conn.is_some() {
            return Ok(());
        }
        let stream = if self.policy.connect_timeout.is_zero() {
            TcpStream::connect(self.addr)?
        } else {
            TcpStream::connect_timeout(&self.addr, self.policy.connect_timeout)?
        };
        stream.set_nodelay(true)?;
        if !self.policy.io_timeout.is_zero() {
            stream.set_read_timeout(Some(self.policy.io_timeout))?;
            stream.set_write_timeout(Some(self.policy.io_timeout))?;
        }
        if self.connected_once {
            self.reconnects += 1;
        }
        self.connected_once = true;
        self.conn = Some(BufReader::new(stream));
        Ok(())
    }

    /// One request/response over the current (or a fresh) connection.
    fn try_frame(&mut self, body: &str, expected: usize) -> Result<Vec<Answer>, FrameTry> {
        self.ensure_connected().map_err(FrameTry::Transport)?;
        let conn = self.conn.as_mut().expect("connected above");
        write!(
            conn.get_mut(),
            "POST /lookup HTTP/1.1\r\nHost: replay\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .map_err(FrameTry::Transport)?;
        let response = read_http_response(conn).map_err(FrameTry::Transport)?;
        if response.close {
            // The server said this was the connection's last response
            // (request cap, drain): honor it before the next frame.
            self.conn = None;
        }
        match response.status {
            200 => {
                let answers = parse_csv_answers(&response.body).map_err(FrameTry::Fatal)?;
                if answers.len() != expected {
                    return Err(FrameTry::Fatal(protocol(format!(
                        "{} answers for {expected} queries",
                        answers.len()
                    ))));
                }
                Ok(answers)
            }
            // Shed or draining — the retryable server-side conditions.
            503 => Err(FrameTry::Unavailable),
            other => Err(FrameTry::Fatal(protocol(format!(
                "HTTP status {other}"
            )))),
        }
    }
}

/// One attempt's failure, split by what a retry could fix.
enum FrameTry {
    /// Socket-level failure: reconnect and retry.
    Transport(std::io::Error),
    /// The daemon answered 503: back off and retry.
    Unavailable,
    /// Malformed response: retrying will not help.
    Fatal(ReplayError),
}

impl LoopClient for HttpLoop {
    fn frame(&mut self, ips: &[IpKey]) -> Result<Vec<Answer>, ReplayError> {
        let mut body = String::with_capacity(ips.len() * 16);
        for ip in ips {
            body.push_str(&ip.to_string());
            body.push('\n');
        }
        let max_attempts = self.policy.max_attempts.max(1);
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let last = match self.try_frame(&body, ips.len()) {
                Ok(answers) => return Ok(answers),
                Err(FrameTry::Fatal(e)) => return Err(e),
                Err(FrameTry::Transport(e)) => ServedError::Io(e),
                Err(FrameTry::Unavailable) => ServedError::Overloaded,
            };
            self.conn = None;
            if attempts >= max_attempts {
                return Err(ReplayError::Served(ServedError::GaveUp {
                    attempts,
                    last: Box::new(last),
                }));
            }
            self.retries += 1;
            std::thread::sleep(self.policy.backoff(attempts));
        }
    }

    fn resilience(&self) -> (u64, u64) {
        (self.retries, self.reconnects)
    }
}

/// Read one HTTP/1.1 response (status line, headers, `Content-Length`
/// body) off a keep-alive connection, leaving the reader positioned at
/// the next response.
fn read_http_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<HttpResponse> {
    let bad = |why: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, why.to_string());
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before the response status line",
        ));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("unparseable HTTP status line"))?;
    let mut content_length: Option<usize> = None;
    let mut close = false;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed inside response headers",
            ));
        }
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        let lower = header.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = Some(
                v.trim()
                    .parse()
                    .map_err(|_| bad("unparseable Content-Length"))?,
            );
        } else if let Some(v) = lower.strip_prefix("connection:") {
            close = v.trim() == "close";
        }
    }
    let len = content_length.ok_or_else(|| bad("response without Content-Length"))?;
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(HttpResponse {
        status,
        close,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

/// Parse a bulk-lookup CSV body back into normalized tuples.
fn parse_csv_answers(payload: &str) -> Result<Vec<Answer>, ReplayError> {
    let mut answers = Vec::new();
    for line in payload.lines().skip(1) {
        // Rows are `ip,prefix,asn,class`, misses `ip,-,-,-`.
        let mut fields = line.splitn(4, ',');
        let _ip = fields.next();
        let prefix = fields.next().ok_or_else(|| protocol("short CSV row"))?;
        let asn = fields.next().ok_or_else(|| protocol("short CSV row"))?;
        let class = fields.next().ok_or_else(|| protocol("short CSV row"))?;
        if prefix == "-" {
            answers.push(None);
            continue;
        }
        let len: u8 = prefix
            .rsplit('/')
            .next()
            .and_then(|l| l.parse().ok())
            .ok_or_else(|| protocol(format!("bad prefix field {prefix:?}")))?;
        let asn: u32 = asn
            .parse()
            .map_err(|_| protocol(format!("bad asn field {asn:?}")))?;
        let class = match class {
            "unknown" => 0,
            "dedicated" => 1,
            "mixed" => 2,
            other => return Err(protocol(format!("bad class field {other:?}"))),
        };
        answers.push(Some((len, asn, class)));
    }
    Ok(answers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_matches_content_hash_of_concatenated_stream() {
        let answers: Vec<Answer> = vec![None, Some((24, 65000, 1)), Some((48, 7, 2)), None];
        let mut digest = AnswerDigest::new();
        let mut bytes = Vec::new();
        for a in &answers {
            digest.push(*a);
            match a {
                None => bytes.push(0),
                Some((len, asn, class)) => {
                    bytes.push(1);
                    bytes.push(*len);
                    bytes.extend_from_slice(&asn.to_le_bytes());
                    bytes.push(*class);
                }
            }
        }
        assert_eq!(digest.value(), cellserve::content_hash(&bytes));
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = AnswerDigest::new();
        a.push(None);
        a.push(Some((24, 1, 1)));
        let mut b = AnswerDigest::new();
        b.push(Some((24, 1, 1)));
        b.push(None);
        assert_ne!(a.value(), b.value());
    }
}
