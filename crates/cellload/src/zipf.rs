//! Zipf popularity sampling by inverse CDF.

/// A precomputed Zipf(s) distribution over ranks `0..n`: rank `r` has
/// weight `1 / (r + 1)^s`.
///
/// Sampling is inverse-CDF over the cumulative weight table, so a
/// uniform `u ∈ [0, 1)` maps to exactly one rank — the sampler itself
/// is a pure function, and determinism reduces to determinism of the
/// `u` stream.
#[derive(Clone, Debug)]
pub struct ZipfTable {
    /// `cum[r]` = P(rank ≤ r); strictly increasing, last entry 1.0.
    cum: Vec<f64>,
}

impl ZipfTable {
    /// Build the table for `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// When `n == 0` — an empty popularity distribution cannot be
    /// sampled; callers gate on [`crate::Universe::is_empty`] first.
    pub fn new(n: usize, s: f64) -> ZipfTable {
        assert!(n > 0, "Zipf over zero ranks");
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 0..n {
            total += 1.0 / ((r + 1) as f64).powf(s);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        *cum.last_mut().expect("n > 0") = 1.0;
        ZipfTable { cum }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// True only for the (unconstructible) empty table; kept for API
    /// symmetry with `len`.
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// Map a uniform draw `u ∈ [0, 1)` to a rank.
    pub fn sample(&self, u: f64) -> usize {
        let u = u.clamp(0.0, 1.0);
        self.cum
            .partition_point(|&c| c <= u)
            .min(self.cum.len() - 1)
    }

    /// The exact probability mass of `rank` — the pin for the
    /// rank-frequency property tests.
    pub fn expected_share(&self, rank: usize) -> f64 {
        let hi = self.cum[rank];
        let lo = if rank == 0 { 0.0 } else { self.cum[rank - 1] };
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_covers_all_ranks_and_respects_boundaries() {
        let z = ZipfTable::new(4, 1.0);
        assert_eq!(z.len(), 4);
        assert!(!z.is_empty());
        assert_eq!(z.sample(0.0), 0);
        // The head rank holds 1/H_4 ≈ 0.48 of the mass.
        assert_eq!(z.sample(0.47), 0);
        assert_eq!(z.sample(0.9999), 3);
        // Out-of-range draws clamp instead of indexing out of bounds.
        assert_eq!(z.sample(1.5), 3);
        assert_eq!(z.sample(-0.5), 0);
    }

    #[test]
    fn expected_shares_sum_to_one() {
        let z = ZipfTable::new(100, 1.2);
        let total: f64 = (0..100).map(|r| z.expected_share(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
