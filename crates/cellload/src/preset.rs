//! Named, seeded workload presets.
//!
//! Every preset is a pure function of `(universe(s), seed, queries)` —
//! and, for `churn`, the epoch count. Generation is deterministic at
//! any rayon thread count: parallel presets derive one RNG stream per
//! **fixed 4096-query chunk** from the trace seed and the chunk's
//! position (never from the worker that happens to run it), the same
//! counter-based discipline the batch pipeline and the query engine
//! use. `steady` is generated sequentially because it must reproduce,
//! byte for byte, the historical `bench::query_mix` stream that every
//! BENCH_lookup / BENCH_serve trajectory point was measured under.
//!
//! The presets (full definitions in `DESIGN.md`):
//!
//! - **steady** — the legacy uniform mix: 55% IPv4 hits, 15% IPv6
//!   hits, 15% TEST-NET-1 misses, 15% random IPv4.
//! - **diurnal** — 24 "hours" with sinusoidal intensity (peak at hour
//!   14), Zipf(1.1)-skewed block popularity behind a seeded rank
//!   permutation, and a hit fraction that sags off-peak.
//! - **flashcrowd** — a Zipf(1.1) baseline; in the middle fifth of the
//!   trace, 85% of queries pile onto ≤8 "crowd" blocks.
//! - **scan** — adversarial cache-buster: a strided sweep over the
//!   served universe (defeating the 256-slot hot-block cache), a
//!   linear IPv4 space sweep, and unserved IPv6 probes. Mostly misses,
//!   no locality.
//! - **churn** — one segment per CELLDELT epoch; each segment mixes
//!   Zipf hits on that epoch's universe with revisits of the previous
//!   epoch's blocks (probing churned-away prefixes), TEST-NET misses,
//!   and random noise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use cellserve::IpKey;

use crate::trace::{Trace, TraceSegment};
use crate::universe::Universe;
use crate::zipf::ZipfTable;

/// Queries per generation chunk; one RNG stream per chunk.
const GEN_CHUNK: usize = 4096;

/// Hours in the diurnal cycle.
const HOURS: usize = 24;

/// Blocks in the flash-crowd hot set (capped by the universe size).
const CROWD_BLOCKS: usize = 8;

/// A named workload preset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preset {
    /// The legacy `bench::query_mix` uniform mix.
    Steady,
    /// Sinusoidal intensity with Zipf-skewed popularity.
    Diurnal,
    /// A Zipf baseline with a mid-trace crowd spike.
    FlashCrowd,
    /// Cache-busting adversarial scan, mostly misses.
    Scan,
    /// Per-epoch segments tracking CELLDELT churn.
    Churn,
}

impl Preset {
    /// Every preset, in canonical order.
    pub const ALL: [Preset; 5] = [
        Preset::Steady,
        Preset::Diurnal,
        Preset::FlashCrowd,
        Preset::Scan,
        Preset::Churn,
    ];

    /// The CLI-facing name.
    pub fn name(self) -> &'static str {
        match self {
            Preset::Steady => "steady",
            Preset::Diurnal => "diurnal",
            Preset::FlashCrowd => "flashcrowd",
            Preset::Scan => "scan",
            Preset::Churn => "churn",
        }
    }

    /// Parse a CLI-facing name.
    pub fn parse(name: &str) -> Option<Preset> {
        Preset::ALL.iter().copied().find(|p| p.name() == name)
    }

    /// Seed-domain separator so two presets never share an RNG stream.
    fn tag(self) -> u64 {
        match self {
            Preset::Steady => 0x5EAD,
            Preset::Diurnal => 0xD1D1,
            Preset::FlashCrowd => 0xF1A5,
            Preset::Scan => 0x5CA0,
            Preset::Churn => 0xC4A7,
        }
    }
}

/// What to generate: a preset plus its seed and size knobs.
#[derive(Clone, Copy, Debug)]
pub struct TraceSpec {
    /// Which workload shape.
    pub preset: Preset,
    /// Generator seed; same seed ⇒ bit-identical trace.
    pub seed: u64,
    /// Total queries across all segments.
    pub queries: usize,
    /// Segment count for `churn` (clamped to ≥ 2); ignored by the
    /// single-segment presets.
    pub epochs: u64,
}

impl TraceSpec {
    /// Generate the trace over the given per-epoch universes.
    ///
    /// Single-segment presets use `universes[0]`; `churn` maps segment
    /// `e` to `universes[min(e, last)]`. The result is bit-identical
    /// for the same spec and universes at any rayon thread count.
    ///
    /// # Panics
    /// When `universes` is empty — pass at least one (possibly empty)
    /// [`Universe`].
    pub fn generate(&self, universes: &[Universe]) -> Trace {
        assert!(!universes.is_empty(), "at least one universe required");
        let u0 = &universes[0];
        let segments = match self.preset {
            Preset::Steady => vec![TraceSegment {
                epoch: 0,
                queries: steady_queries(u0, self.queries, self.seed),
            }],
            Preset::Diurnal => vec![TraceSegment {
                epoch: 0,
                queries: diurnal_queries(u0, self.queries, self.seed),
            }],
            Preset::FlashCrowd => vec![TraceSegment {
                epoch: 0,
                queries: flashcrowd_queries(u0, self.queries, self.seed),
            }],
            Preset::Scan => vec![TraceSegment {
                epoch: 0,
                queries: scan_queries(u0, self.queries, self.seed),
            }],
            Preset::Churn => churn_segments(universes, self.queries, self.seed, self.epochs),
        };
        Trace {
            preset: self.preset.name().to_string(),
            seed: self.seed,
            segments,
        }
    }
}

/// SplitMix64 finalizer: the chunk-seed mixer.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The seed of one generation chunk: a pure function of the trace
/// seed, the preset, the segment, and the chunk index — never of the
/// worker thread.
fn chunk_seed(seed: u64, preset: Preset, segment: u64, chunk: u64) -> u64 {
    splitmix(seed ^ splitmix(preset.tag() ^ splitmix(segment ^ splitmix(chunk))))
}

/// Generate `total` queries in fixed chunks, in parallel, order
/// preserved: `f(chunk_index, start_position, len)` must be pure.
fn gen_chunked<F>(total: usize, f: F) -> Vec<IpKey>
where
    F: Fn(u64, usize, usize) -> Vec<IpKey> + Sync,
{
    let chunks = total.div_ceil(GEN_CHUNK);
    let parts: Vec<Vec<IpKey>> = (0..chunks)
        .into_par_iter()
        .map(|c| {
            let start = c * GEN_CHUNK;
            let len = GEN_CHUNK.min(total - start);
            f(c as u64, start, len)
        })
        .collect();
    parts.concat()
}

/// A seeded Fisher–Yates permutation of `0..n`: the popularity-rank →
/// block-index mapping, so "rank 0" is a different block per seed.
fn permutation(n: usize, seed: u64) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// A query inside combined block `idx` (v4 blocks first, then v6),
/// host bits drawn from `rng`.
fn block_query(u: &Universe, idx: usize, rng: &mut StdRng) -> IpKey {
    if idx < u.v4.len() {
        IpKey::V4(u.v4[idx].addr(rng.gen()))
    } else {
        let b = u.v6[idx - u.v4.len()];
        IpKey::V6(b.addr(rng.gen(), rng.gen()))
    }
}

/// A guaranteed-miss query: TEST-NET-1 or random IPv4 noise.
fn miss_query(rng: &mut StdRng) -> IpKey {
    if rng.gen::<f64>() < 0.5 {
        IpKey::V4(0xC000_0200 | rng.gen_range(0u32..256))
    } else {
        IpKey::V4(rng.gen())
    }
}

/// The `steady` preset: a byte-exact port of the historical
/// `bench::query_mix` — same seed mixing constant, same draw order,
/// same branch thresholds — so every pre-existing BENCH trajectory
/// point stays comparable. Sequential by construction (a single RNG
/// stream), hence trivially thread-count invariant.
pub fn steady_queries(u: &Universe, lookups: usize, seed: u64) -> Vec<IpKey> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB37C_5E11);
    let mut queries = Vec::with_capacity(lookups);
    for _ in 0..lookups {
        let roll: f64 = rng.gen();
        if roll < 0.55 && !u.v4.is_empty() {
            let b = u.v4[rng.gen_range(0..u.v4.len())];
            queries.push(IpKey::V4(b.addr(rng.gen())));
        } else if roll < 0.70 && !u.v6.is_empty() {
            let b = u.v6[rng.gen_range(0..u.v6.len())];
            queries.push(IpKey::V6(b.addr(rng.gen(), rng.gen())));
        } else if roll < 0.85 {
            // TEST-NET-1: always a miss.
            queries.push(IpKey::V4(0xC000_0200 | rng.gen_range(0u32..256)));
        } else {
            queries.push(IpKey::V4(rng.gen()));
        }
    }
    queries
}

/// Diurnal intensity weight of hour `h`: sinusoidal, peak at hour 14,
/// trough at hour 2.
fn hour_weight(h: usize) -> f64 {
    1.0 + 0.8 * (std::f64::consts::TAU * (h as f64 - 8.0) / HOURS as f64).sin()
}

/// Hit fraction of hour `h`: busier hours are more cacheable traffic,
/// off-peak hours carry proportionally more scanner noise.
fn hour_hit_fraction(h: usize) -> f64 {
    0.70 + 0.15 * hour_weight(h)
}

/// Largest-remainder apportionment of `total` over `weights`,
/// deterministic (ties broken by index).
fn apportion(total: usize, weights: &[f64]) -> Vec<usize> {
    let wsum: f64 = weights.iter().sum();
    let exact: Vec<f64> = weights.iter().map(|w| total as f64 * w / wsum).collect();
    let mut counts: Vec<usize> = exact.iter().map(|e| e.floor() as usize).collect();
    let mut used: usize = counts.iter().sum();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = exact[a] - counts[a] as f64;
        let fb = exact[b] - counts[b] as f64;
        fb.total_cmp(&fa).then(a.cmp(&b))
    });
    let mut k = 0;
    while used < total {
        counts[order[k % order.len()]] += 1;
        used += 1;
        k += 1;
    }
    counts
}

/// The `diurnal` preset: hour-apportioned counts, Zipf(1.1) popularity
/// behind a seeded permutation, hour-dependent hit fraction.
fn diurnal_queries(u: &Universe, lookups: usize, seed: u64) -> Vec<IpKey> {
    let weights: Vec<f64> = (0..HOURS).map(hour_weight).collect();
    let counts = apportion(lookups, &weights);
    let n = u.len();
    let zipf = (n > 0).then(|| ZipfTable::new(n, 1.1));
    let perm = permutation(n, splitmix(seed ^ 0xD1_0000));
    let mut out = Vec::with_capacity(lookups);
    for (h, &count) in counts.iter().enumerate() {
        let hit = hour_hit_fraction(h);
        let hour_queries = gen_chunked(count, |c, _start, len| {
            let mut rng = StdRng::seed_from_u64(chunk_seed(seed, Preset::Diurnal, h as u64, c));
            let mut q = Vec::with_capacity(len);
            for _ in 0..len {
                match &zipf {
                    Some(z) if rng.gen::<f64>() < hit => {
                        let rank = z.sample(rng.gen());
                        q.push(block_query(u, perm[rank] as usize, &mut rng));
                    }
                    _ => q.push(miss_query(&mut rng)),
                }
            }
            q
        });
        out.extend(hour_queries);
    }
    out
}

/// The `flashcrowd` preset: Zipf baseline, with the middle fifth of
/// the trace stampeding onto a tiny crowd set.
fn flashcrowd_queries(u: &Universe, lookups: usize, seed: u64) -> Vec<IpKey> {
    let n = u.len();
    let zipf = (n > 0).then(|| ZipfTable::new(n, 1.1));
    let perm = permutation(n, splitmix(seed ^ 0xF1_0000));
    let crowd: Vec<u32> = perm.iter().copied().take(CROWD_BLOCKS).collect();
    let window = (lookups * 2 / 5)..(lookups * 3 / 5);
    gen_chunked(lookups, |c, start, len| {
        let mut rng = StdRng::seed_from_u64(chunk_seed(seed, Preset::FlashCrowd, 0, c));
        let mut q = Vec::with_capacity(len);
        for j in 0..len {
            let pos = start + j;
            if window.contains(&pos) && !crowd.is_empty() && rng.gen::<f64>() < 0.85 {
                let b = crowd[rng.gen_range(0..crowd.len())];
                q.push(block_query(u, b as usize, &mut rng));
            } else {
                match &zipf {
                    Some(z) if rng.gen::<f64>() < 0.90 => {
                        let rank = z.sample(rng.gen());
                        q.push(block_query(u, perm[rank] as usize, &mut rng));
                    }
                    _ => q.push(miss_query(&mut rng)),
                }
            }
        }
        q
    })
}

/// The `scan` preset: a pure function of position — a strided sweep
/// over the served universe that touches a different block every
/// query (defeating the direct-mapped hot-block cache), interleaved
/// with a linear IPv4 space sweep and unserved IPv6 probes.
fn scan_queries(u: &Universe, lookups: usize, seed: u64) -> Vec<IpKey> {
    let n = u.len() as u64;
    let v4_base = splitmix(seed ^ 0x5C_0001) as u32;
    gen_chunked(lookups, |_c, start, len| {
        let mut q = Vec::with_capacity(len);
        for j in 0..len {
            let p = (start + j) as u64;
            let lane = p % 16;
            if lane < 11 && n > 0 {
                // Strided universe sweep: consecutive queries land in
                // different blocks, so the 256-slot cache never helps.
                let idx = (p.wrapping_mul(0x9E37_79B1) % n) as usize;
                if idx < u.v4.len() {
                    q.push(IpKey::V4(u.v4[idx].addr(p as u8)));
                } else {
                    let b = u.v6[idx - u.v4.len()];
                    q.push(IpKey::V6(b.addr(p as u16, p)));
                }
            } else if lane < 14 {
                // Linear IPv4 sweep: almost entirely unserved space.
                q.push(IpKey::V4(
                    v4_base.wrapping_add((p as u32).wrapping_mul(0x0101_0101)),
                ));
            } else {
                // Unserved IPv6 probes.
                let hi = splitmix(seed ^ p) as u128;
                let lo = splitmix(p ^ 0x6666) as u128;
                q.push(IpKey::V6(hi << 64 | lo));
            }
        }
        q
    })
}

/// The `churn` preset: one segment per epoch; each segment mixes Zipf
/// hits on its own universe with revisits of the previous epoch's
/// blocks, probing prefixes the delta may have changed or removed.
fn churn_segments(
    universes: &[Universe],
    lookups: usize,
    seed: u64,
    epochs: u64,
) -> Vec<TraceSegment> {
    let segments = epochs.max(2) as usize;
    let base = lookups / segments;
    let rem = lookups % segments;
    let last = universes.len() - 1;
    (0..segments)
        .map(|e| {
            let count = base + usize::from(e < rem);
            let cur = &universes[e.min(last)];
            let prev = &universes[e.saturating_sub(1).min(last)];
            let n = cur.len();
            let zipf = (n > 0).then(|| ZipfTable::new(n, 1.0));
            let perm = permutation(n, chunk_seed(seed, Preset::Churn, e as u64, u64::MAX));
            let queries = gen_chunked(count, |c, _start, len| {
                let mut rng = StdRng::seed_from_u64(chunk_seed(seed, Preset::Churn, e as u64, c));
                let mut q = Vec::with_capacity(len);
                for _ in 0..len {
                    let roll: f64 = rng.gen();
                    if roll < 0.60 && !cur.is_empty() {
                        let z = zipf.as_ref().expect("non-empty universe");
                        let rank = z.sample(rng.gen());
                        q.push(block_query(cur, perm[rank] as usize, &mut rng));
                    } else if roll < 0.80 && !prev.is_empty() {
                        let idx = rng.gen_range(0..prev.len());
                        q.push(block_query(prev, idx, &mut rng));
                    } else {
                        q.push(miss_query(&mut rng));
                    }
                }
                q
            });
            TraceSegment {
                epoch: e as u64,
                queries,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netaddr::{Block24, Block48};

    fn tiny_universe() -> Universe {
        Universe {
            v4: (0..32).map(Block24::from_index).collect(),
            v6: (0..8).map(Block48::from_index).collect(),
        }
    }

    #[test]
    fn every_preset_generates_the_requested_query_count() {
        let u = tiny_universe();
        for preset in Preset::ALL {
            let spec = TraceSpec {
                preset,
                seed: 9,
                queries: 10_000,
                epochs: 3,
            };
            let t = spec.generate(std::slice::from_ref(&u));
            assert_eq!(t.total_queries(), 10_000, "{}", preset.name());
            assert_eq!(t.preset, preset.name());
            let expected_segments = if preset == Preset::Churn { 3 } else { 1 };
            assert_eq!(t.segments.len(), expected_segments, "{}", preset.name());
        }
    }

    #[test]
    fn empty_universe_degrades_to_miss_traffic_without_panicking() {
        let empty = Universe::default();
        for preset in Preset::ALL {
            let spec = TraceSpec {
                preset,
                seed: 3,
                queries: 500,
                epochs: 2,
            };
            let t = spec.generate(std::slice::from_ref(&empty));
            assert_eq!(t.total_queries(), 500, "{}", preset.name());
        }
    }

    #[test]
    fn preset_names_roundtrip() {
        for preset in Preset::ALL {
            assert_eq!(Preset::parse(preset.name()), Some(preset));
        }
        assert_eq!(Preset::parse("nope"), None);
    }

    #[test]
    fn apportion_is_exact_and_deterministic() {
        let counts = apportion(1000, &(0..HOURS).map(hour_weight).collect::<Vec<_>>());
        assert_eq!(counts.iter().sum::<usize>(), 1000);
        assert!(counts[14] > counts[2], "peak hour outweighs trough");
    }
}
