//! Resilience acceptance tests: the seeded replay answer digest is
//! invariant across transports, a daemon kill/restart mid-replay, and
//! slow-client shedding — the hardened serving path may change *how*
//! answers arrive, never *what* they are.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use celldelta::ChurnWorld;
use cellload::{
    replay_engine, replay_framed, replay_http, ClientPolicy, Preset, ReplayConfig, TraceSpec,
    Universe,
};
use cellobs::Observer;
use cellserve::FrozenIndex;
use cellserved::{Daemon, ServeConfig};

fn frozen() -> FrozenIndex {
    let world = ChurnWorld::demo(17);
    celldelta::classify_epoch(&world.epoch_counters(0), cellspot::DEFAULT_THRESHOLD)
}

fn config() -> ServeConfig {
    ServeConfig {
        http_listen: Some("127.0.0.1:0".into()),
        tcp_listen: Some("127.0.0.1:0".into()),
        workers: 2,
        ..ServeConfig::default()
    }
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

/// The headline acceptance check: one seeded trace, replayed over
/// keep-alive HTTP, over framed TCP **with the daemon killed and
/// restarted mid-replay**, and through the in-process engine — three
/// identical answer digests. The restart is healed entirely inside the
/// resilient clients (reconnect + whole-frame retry), so the only
/// visible difference is `replay.retries`/`replay.reconnects`.
#[test]
fn digests_survive_transports_and_a_midreplay_daemon_restart() {
    let index = frozen();
    let universe = Universe::from_frozen(&index);
    let trace = TraceSpec {
        preset: Preset::Steady,
        seed: 0xD16E,
        queries: 8_000,
        epochs: 1,
    }
    .generate(std::slice::from_ref(&universe));

    let arc = Arc::new(frozen());
    let cold = replay_engine(&trace, &Observer::disabled(), |_| arc.clone());
    assert_eq!(cold.lookups, 8_000);

    // Leg 1: keep-alive HTTP against a healthy daemon.
    let obs = Observer::enabled();
    let daemon = Daemon::start_with_index(config(), frozen(), obs.clone()).expect("daemon starts");
    let cfg = ReplayConfig {
        clients: 3,
        frame: 128,
        ..ReplayConfig::default()
    };
    let http = replay_http(
        daemon.http_addr().expect("http endpoint"),
        &trace,
        &cfg,
        &obs,
        |_| Ok(()),
    )
    .expect("http replay");
    let tcp_addr = daemon.tcp_addr().expect("tcp endpoint");
    let snap = obs.snapshot();
    assert!(
        snap.counters.get("served.http.keepalive.reuses").copied().unwrap_or(0) > 0,
        "bulk replay must reuse its connections, not reconnect per frame"
    );

    // Leg 2: framed TCP, with the daemon bounced under the replay. The
    // clients get a generous retry budget so the restart window (well
    // under a second) always fits inside it.
    let restarted = Arc::new(AtomicBool::new(false));
    let obs2 = obs.clone();
    let trace2 = &trace;
    let restarted2 = Arc::clone(&restarted);
    let (tcp, daemon) = std::thread::scope(|s| {
        let replayer = s.spawn(move || {
            replay_framed(
                tcp_addr,
                trace2,
                &ReplayConfig {
                    clients: 3,
                    frame: 128,
                    policy: ClientPolicy {
                        max_attempts: 10,
                        backoff_base: Duration::from_millis(25),
                        ..ClientPolicy::default()
                    },
                },
                &obs2,
                |_| Ok(()),
            )
        });
        // Let traffic flow, then kill the daemon and restart it on the
        // very same port (SO_REUSEADDR carries it past TIME_WAIT).
        assert!(
            wait_until(Duration::from_secs(10), || {
                obs.snapshot()
                    .counters
                    .get("served.tcp.requests")
                    .copied()
                    .unwrap_or(0)
                    > 2
            }),
            "replay traffic never reached the daemon"
        );
        daemon.shutdown();
        let mut cfg = config();
        cfg.http_listen = None;
        cfg.tcp_listen = Some(tcp_addr.to_string());
        let daemon =
            Daemon::start_with_index(cfg, frozen(), obs.clone()).expect("daemon restarts");
        restarted2.store(true, Ordering::SeqCst);
        (replayer.join().expect("replay thread"), daemon)
    });
    let tcp = tcp.expect("tcp replay across the restart");
    assert!(restarted.load(Ordering::SeqCst));
    daemon.shutdown();

    assert_eq!(http.dropped, 0, "http replay dropped queries");
    assert_eq!(tcp.dropped, 0, "tcp replay dropped queries");
    assert_eq!(
        cold.answer_digest, http.answer_digest,
        "http answers diverge from the cold engine run"
    );
    assert_eq!(
        cold.answer_digest, tcp.answer_digest,
        "tcp answers across a daemon restart diverge from the cold engine run"
    );
    assert_eq!(cold.matched, http.matched);
    assert_eq!(cold.matched, tcp.matched);
    let snap = obs.snapshot();
    assert!(
        snap.counters.get("replay.retries").copied().unwrap_or(0) > 0,
        "the restart must have forced at least one frame retry"
    );
}

/// A slowloris peer stalled past `io_timeout` is shed — visible in
/// `served.conns.rejected` — while a concurrent replay's digest is
/// untouched.
#[test]
fn stalled_connections_are_shed_without_affecting_digests() {
    let index = frozen();
    let universe = Universe::from_frozen(&index);
    let trace = TraceSpec {
        preset: Preset::Steady,
        seed: 0x51A1,
        queries: 4_000,
        epochs: 1,
    }
    .generate(std::slice::from_ref(&universe));
    let arc = Arc::new(frozen());
    let cold = replay_engine(&trace, &Observer::disabled(), |_| arc.clone());

    let mut cfg = config();
    cfg.io_timeout = Duration::from_millis(150);
    let obs = Observer::enabled();
    let daemon = Daemon::start_with_index(cfg, frozen(), obs.clone()).expect("daemon starts");

    // Two stalled sockets, one per endpoint: a dribbled frame header
    // and a dribbled request line, then silence.
    let mut slow_tcp =
        std::net::TcpStream::connect(daemon.tcp_addr().expect("tcp")).expect("connect");
    slow_tcp.write_all(&[0x02, 0x00]).expect("partial frame");
    let mut slow_http =
        std::net::TcpStream::connect(daemon.http_addr().expect("http")).expect("connect");
    slow_http.write_all(b"POST /loo").expect("partial request");

    let replay_cfg = ReplayConfig {
        clients: 2,
        frame: 128,
        ..ReplayConfig::default()
    };
    let tcp = replay_framed(
        daemon.tcp_addr().expect("tcp"),
        &trace,
        &replay_cfg,
        &obs,
        |_| Ok(()),
    )
    .expect("tcp replay");
    let http = replay_http(
        daemon.http_addr().expect("http"),
        &trace,
        &replay_cfg,
        &obs,
        |_| Ok(()),
    )
    .expect("http replay");

    assert!(
        wait_until(Duration::from_secs(5), || {
            obs.snapshot()
                .counters
                .get("served.conns.rejected")
                .copied()
                .unwrap_or(0)
                >= 2
        }),
        "both stalled sockets must be shed"
    );
    let snap = daemon.shutdown();
    assert!(snap.counters["served.conns.rejected"] >= 2);
    assert_eq!(tcp.dropped, 0);
    assert_eq!(http.dropped, 0);
    assert_eq!(
        cold.answer_digest, tcp.answer_digest,
        "shedding slow peers must not perturb tcp answers"
    );
    assert_eq!(
        cold.answer_digest, http.answer_digest,
        "shedding slow peers must not perturb http answers"
    );
}
