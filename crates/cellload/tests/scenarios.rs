//! Closed-loop scenario tests against a live in-process daemon: every
//! single-artifact preset answers identically over the engine, framed
//! TCP, and bulk HTTP; daemon counters only ever grow; the churn preset
//! replays byte-identically across a `--delta-watch` hot-patch; and the
//! scan preset cannot break the engine's cache accounting.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use celldelta::ChurnWorld;
use cellload::{
    replay_engine, replay_framed, replay_http, Preset, ReplayConfig, ReplayError, TraceSpec,
    Universe,
};
use cellobs::Observer;
use cellserve::FrozenIndex;
use cellserved::{Daemon, ServeConfig};
use cellstream::write_atomic_bytes;

fn frozen_for_epoch(world: &ChurnWorld, epoch: u64) -> FrozenIndex {
    celldelta::classify_epoch(&world.epoch_counters(epoch), cellspot::DEFAULT_THRESHOLD)
}

fn config() -> ServeConfig {
    ServeConfig {
        http_listen: Some("127.0.0.1:0".into()),
        tcp_listen: Some("127.0.0.1:0".into()),
        workers: 2,
        reload_poll: Duration::from_millis(10),
        ..ServeConfig::default()
    }
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cellload-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

#[test]
fn single_artifact_presets_answer_identically_on_all_three_targets() {
    let world = ChurnWorld::demo(21);
    let frozen = frozen_for_epoch(&world, 0);
    let universe = Universe::from_frozen(&frozen);
    let bytes = cellserve::Artifact::encode(&frozen, cellserve::ArtifactFormat::V2);
    // The cold engine leg runs over the zero-copy v2 handle while the
    // daemon serves a decoded index — answers must still be identical.
    let arc = Arc::new(cellserve::Artifact::from_bytes(&bytes).expect("sealed artifact loads"));
    assert!(arc.format() == cellserve::ArtifactFormat::V2);
    for preset in Preset::ALL {
        if preset == Preset::Churn {
            continue; // crosses epochs; covered by the hot-patch test
        }
        let trace = TraceSpec {
            preset,
            seed: 7,
            queries: 6_000,
            epochs: 1,
        }
        .generate(std::slice::from_ref(&universe));

        let engine = replay_engine(&trace, &Observer::disabled(), |_| arc.clone());
        assert_eq!(engine.lookups, 6_000, "preset {}", preset.name());

        let obs = Observer::enabled();
        let daemon = Daemon::start_with_index(
            config(),
            cellserve::Artifact::decode(&bytes).expect("reload artifact"),
            obs.clone(),
        )
        .expect("daemon starts");
        let cfg = ReplayConfig {
            clients: 3,
            frame: 128,
            ..ReplayConfig::default()
        };
        let tcp = replay_framed(
            daemon.tcp_addr().expect("tcp endpoint"),
            &trace,
            &cfg,
            &obs,
            |_| Ok(()),
        )
        .expect("tcp replay");
        let http = replay_http(
            daemon.http_addr().expect("http endpoint"),
            &trace,
            &cfg,
            &obs,
            |_| Ok(()),
        )
        .expect("http replay");
        let snap = daemon.shutdown();

        let name = preset.name();
        assert_eq!(tcp.dropped, 0, "preset {name} dropped tcp queries");
        assert_eq!(http.dropped, 0, "preset {name} dropped http queries");
        assert_eq!(
            engine.answer_digest, tcp.answer_digest,
            "preset {name}: tcp answers diverge from a cold engine run"
        );
        assert_eq!(
            engine.answer_digest, http.answer_digest,
            "preset {name}: http answers diverge from a cold engine run"
        );
        assert_eq!(engine.matched, tcp.matched, "preset {name}");
        assert_eq!(engine.matched, http.matched, "preset {name}");
        // Both network replays flowed through the daemon's engine: one
        // counter tick per lookup, none lost.
        assert_eq!(
            snap.counters.get("serve.lookups").copied().unwrap_or(0),
            2 * trace.total_queries() as u64,
            "preset {name}"
        );
    }
}

#[test]
fn daemon_counters_are_monotone_across_replays() {
    let world = ChurnWorld::demo(33);
    let frozen = frozen_for_epoch(&world, 0);
    let universe = Universe::from_frozen(&frozen);
    let obs = Observer::enabled();
    let daemon = Daemon::start_with_index(config(), frozen, obs.clone()).expect("daemon starts");
    let addr = daemon.tcp_addr().expect("tcp endpoint");
    let trace = TraceSpec {
        preset: Preset::Diurnal,
        seed: 5,
        queries: 4_000,
        epochs: 1,
    }
    .generate(std::slice::from_ref(&universe));
    let cfg = ReplayConfig {
        clients: 2,
        frame: 128,
        ..ReplayConfig::default()
    };

    replay_framed(addr, &trace, &cfg, &obs, |_| Ok(())).expect("first replay");
    let first = obs.snapshot();
    replay_framed(addr, &trace, &cfg, &obs, |_| Ok(())).expect("second replay");
    let second = obs.snapshot();
    daemon.shutdown();

    for (name, value) in &first.counters {
        let later = second.counters.get(name).copied().unwrap_or(0);
        assert!(
            later >= *value,
            "counter {name} went backwards: {value} -> {later}"
        );
    }
    assert_eq!(
        second.counters.get("serve.lookups").copied().unwrap_or(0),
        2 * trace.total_queries() as u64,
        "every query of both replays is counted exactly once"
    );
}

#[test]
fn churn_replay_across_delta_watch_hot_patch_matches_cold_engine_replay() {
    const EPOCHS: u64 = 3;
    let world = ChurnWorld::demo(11);
    let mut artifacts = Vec::new();
    let mut arcs = Vec::new();
    let mut universes = Vec::new();
    for e in 0..EPOCHS {
        let frozen = frozen_for_epoch(&world, e);
        universes.push(Universe::from_frozen(&frozen));
        artifacts.push(cellserve::Artifact::encode(
            &frozen,
            cellserve::ArtifactFormat::V2,
        ));
        arcs.push(Arc::new(frozen));
    }
    // The labels must actually churn, or the hot-patch proves nothing.
    assert!(
        artifacts.windows(2).all(|w| w[0] != w[1]),
        "the demo churn world relabels blocks every epoch"
    );
    let deltas: Vec<Vec<u8>> = artifacts
        .windows(2)
        .enumerate()
        .map(|(i, w)| {
            celldelta::build_delta(&w[0], &w[1], i as u64, i as u64 + 1).expect("seal delta")
        })
        .collect();

    let trace = TraceSpec {
        preset: Preset::Churn,
        seed: 0xC4A7,
        queries: 9_000,
        epochs: EPOCHS,
    }
    .generate(&universes);
    let cold = replay_engine(&trace, &Observer::disabled(), |e| arcs[e as usize].clone());

    let dir = tmpdir("churn-hotpatch");
    let delta_path = dir.join("latest.cdlt");
    let mut cfg = config();
    cfg.delta_watch = Some(delta_path.clone());
    let obs = Observer::enabled();
    let daemon = Daemon::start_with_index(
        cfg,
        cellserve::Artifact::decode(&artifacts[0]).expect("base artifact"),
        obs.clone(),
    )
    .expect("daemon starts");
    let addr = daemon.tcp_addr().expect("tcp endpoint");

    let daemon_ref = &daemon;
    let live = replay_framed(
        addr,
        &trace,
        &ReplayConfig {
            clients: 3,
            frame: 96,
            ..ReplayConfig::default()
        },
        &obs,
        |epoch| {
            if epoch == 0 {
                return Ok(());
            }
            // Publish the delta the way an operator would — atomically
            // replacing the watched file — and gate the segment's
            // traffic on the daemon picking it up.
            write_atomic_bytes(&delta_path, &deltas[epoch as usize - 1])
                .map_err(|e| ReplayError::Hook(format!("publish delta: {e}")))?;
            if !wait_until(Duration::from_secs(10), || {
                daemon_ref.generation() == epoch + 1
            }) {
                return Err(ReplayError::Hook(format!(
                    "daemon never reached generation {}",
                    epoch + 1
                )));
            }
            Ok(())
        },
    )
    .expect("live churn replay");
    daemon.shutdown();

    assert_eq!(live.dropped, 0, "the hot-patched daemon dropped queries");
    assert_eq!(
        live.answer_digest, cold.answer_digest,
        "hot-patched daemon must answer byte-identically to cold per-epoch engine runs"
    );
    assert_eq!(live.matched, cold.matched);
    let live_segs: Vec<u64> = live.segments.iter().map(|s| s.answer_digest).collect();
    let cold_segs: Vec<u64> = cold.segments.iter().map(|s| s.answer_digest).collect();
    assert_eq!(live_segs, cold_segs, "per-segment digests diverge");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scan_preset_cache_accounting_stays_exact() {
    let world = ChurnWorld::demo(8);
    let frozen = frozen_for_epoch(&world, 0);
    let universe = Universe::from_frozen(&frozen);
    let arc = Arc::new(frozen);
    let trace = TraceSpec {
        preset: Preset::Scan,
        seed: 13,
        queries: 20_000,
        epochs: 1,
    }
    .generate(std::slice::from_ref(&universe));
    let outcome = replay_engine(&trace, &Observer::disabled(), |_| arc.clone());
    assert_eq!(outcome.lookups, 20_000);
    assert_eq!(
        outcome.cache_hits + outcome.cache_misses + outcome.uncached,
        outcome.lookups,
        "every lookup lands in exactly one accounting bucket"
    );
    assert!(
        outcome.matched > 0,
        "the positional sweep still hits live prefixes"
    );
    // A cache-busting sweep must not look like a steady workload: the
    // direct-mapped chunk cache should mostly miss.
    let cached = (outcome.cache_hits + outcome.cache_misses).max(1);
    assert!(
        (outcome.cache_hits as f64) / (cached as f64) < 0.9,
        "scan hit rate suspiciously high: {} of {cached}",
        outcome.cache_hits
    );
}
