//! The generator's three standing contracts, checked from outside the
//! crate: thread-count invariance of every preset, the Zipf table's
//! rank-frequency shape, and canonical (corruption-rejecting) trace
//! serialization.

use celldelta::ChurnWorld;
use cellload::{Preset, Trace, TraceSegment, TraceSpec, Universe, ZipfTable};
use cellserve::IpKey;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A realistic mixed v4/v6 prefix universe without building a full
/// world: classify one epoch of the built-in churn world.
fn universe_for_epoch(world: &ChurnWorld, epoch: u64) -> Universe {
    let frozen =
        celldelta::classify_epoch(&world.epoch_counters(epoch), cellspot::DEFAULT_THRESHOLD);
    Universe::from_frozen(&frozen)
}

fn generate_in_pool(spec: &TraceSpec, universes: &[Universe], threads: usize) -> Trace {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build rayon pool")
        .install(|| spec.generate(universes))
}

#[test]
fn every_preset_is_bit_identical_across_thread_counts() {
    let world = ChurnWorld::demo(3);
    let universes: Vec<Universe> = (0..3).map(|e| universe_for_epoch(&world, e)).collect();
    assert!(!universes[0].is_empty(), "epoch 0 classifies some blocks");
    for preset in Preset::ALL {
        let spec = TraceSpec {
            preset,
            seed: 0x5EED,
            queries: 30_000,
            epochs: 3,
        };
        let one = generate_in_pool(&spec, &universes, 1);
        let eight = generate_in_pool(&spec, &universes, 8);
        assert_eq!(
            one.to_bytes(),
            eight.to_bytes(),
            "preset {} diverges across thread counts",
            preset.name()
        );
        assert_eq!(one.total_queries(), 30_000, "preset {}", preset.name());
    }
}

#[test]
fn distinct_seeds_yield_distinct_traces() {
    let world = ChurnWorld::demo(3);
    let universe = universe_for_epoch(&world, 0);
    for preset in Preset::ALL {
        let spec = |seed| TraceSpec {
            preset,
            seed,
            queries: 5_000,
            epochs: 2,
        };
        let a = spec(1).generate(std::slice::from_ref(&universe));
        let b = spec(2).generate(std::slice::from_ref(&universe));
        assert_ne!(
            a.digest(),
            b.digest(),
            "preset {} ignores its seed",
            preset.name()
        );
    }
}

#[test]
fn zipf_rank_frequencies_track_expected_shares() {
    let n = 50;
    let table = ZipfTable::new(n, 1.1);
    let samples = 400_000u64;
    let mut counts = vec![0u64; n];
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..samples {
        counts[table.sample(rng.gen())] += 1;
    }
    // Head ranks carry enough mass for a tight relative tolerance; the
    // additive floor keeps deep-tail ranks from flaking.
    for rank in [0usize, 1, 4, 9, 24] {
        let observed = counts[rank] as f64 / samples as f64;
        let expected = table.expected_share(rank);
        assert!(
            (observed - expected).abs() < expected * 0.10 + 1e-3,
            "rank {rank}: observed {observed:.4} vs expected {expected:.4}"
        );
    }
    assert!(
        counts[0] > counts[9] && counts[9] > counts[n - 1],
        "popularity must fall with rank: {counts:?}"
    );
}

fn arb_ipkey() -> impl Strategy<Value = IpKey> {
    prop_oneof![
        any::<u32>().prop_map(IpKey::V4),
        any::<u128>().prop_map(IpKey::V6),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// Encoding is canonical: decode(encode(t)) == t and re-encoding
    /// reproduces the same bytes, for arbitrary trace shapes.
    #[test]
    fn traces_roundtrip_canonically(
        seed in any::<u64>(),
        preset in "[a-z]{1,12}",
        segs in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(arb_ipkey(), 0..64)),
            0..4,
        ),
    ) {
        let trace = Trace {
            preset,
            seed,
            segments: segs
                .into_iter()
                .map(|(epoch, queries)| TraceSegment { epoch, queries })
                .collect(),
        };
        let bytes = trace.to_bytes();
        let back = Trace::from_bytes(&bytes).expect("sealed trace decodes");
        prop_assert_eq!(&back, &trace);
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    /// Any single-bit flip anywhere in a sealed trace is rejected (the
    /// CRC-32 trailer catches all single-bit errors by construction).
    #[test]
    fn corrupted_traces_are_rejected(
        seed in any::<u64>(),
        flip in any::<usize>(),
        segs in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(arb_ipkey(), 1..32)),
            1..3,
        ),
    ) {
        let trace = Trace {
            preset: "steady".into(),
            seed,
            segments: segs
                .into_iter()
                .map(|(epoch, queries)| TraceSegment { epoch, queries })
                .collect(),
        };
        let mut bytes = trace.to_bytes();
        let i = flip % bytes.len();
        bytes[i] ^= 0x01;
        prop_assert!(Trace::from_bytes(&bytes).is_err(), "flip at byte {} accepted", i);
    }
}
