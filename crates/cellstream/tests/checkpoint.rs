//! Checkpoint/restore integration: killing the ingest mid-stream and
//! resuming from disk must be indistinguishable from never stopping.

use std::path::PathBuf;

use cdnsim::{CdnConfig, EventSource};
use cellstream::{IngestEngine, ResolverMap, Snapshot, StreamConfig};
use dnssim::generate_dns;
use worldgen::{World, WorldConfig};

fn tmp_path(name: &str) -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    p.push(name);
    p
}

fn mini_setup() -> (World, dnssim::DnsSim) {
    let world = World::generate(WorldConfig::mini());
    let dns = generate_dns(&world);
    (world, dns)
}

#[test]
fn restore_and_continue_matches_uninterrupted_run() {
    let (world, dns) = mini_setup();
    let source = EventSource::new(&world, CdnConfig::default(), 6);
    let cfg = StreamConfig {
        shards: 3,
        ..Default::default()
    };

    // Reference: never interrupted.
    let mut uninterrupted = IngestEngine::for_source(cfg, &source, ResolverMap::from_dns(&dns));
    for _ in 0..3 {
        uninterrupted.ingest_epoch(&source);
    }
    let mid_reference = uninterrupted.snapshot().to_json();
    uninterrupted.run_to_end(&source);
    let final_reference = uninterrupted.snapshot().to_json();

    // Killed after 3 epochs, checkpointed to disk, restored, resumed.
    let path = tmp_path("cellstream_mid.json");
    {
        let mut engine = IngestEngine::for_source(cfg, &source, ResolverMap::from_dns(&dns));
        for _ in 0..3 {
            engine.ingest_epoch(&source);
        }
        let snap = engine.snapshot();
        assert_eq!(
            snap.to_json(),
            mid_reference,
            "same state must serialize to byte-identical JSON"
        );
        snap.write_to(&path).expect("write checkpoint");
        // Engine dropped here: the "kill".
    }
    let snap = Snapshot::read_from(&path).expect("read checkpoint");
    let mut resumed = IngestEngine::restore(&snap, ResolverMap::from_dns(&dns));
    assert_eq!(resumed.epochs_done(), 3);
    assert!(!resumed.finished());
    resumed.run_to_end(&source);
    assert_eq!(
        resumed.snapshot().to_json(),
        final_reference,
        "resumed run must end in byte-identical state"
    );

    // And the folded outputs agree exactly, not just the serialized state.
    let a = uninterrupted.finalize();
    let b = resumed.finalize();
    assert_eq!(a.beacons.len(), b.beacons.len());
    for (x, y) in a.beacons.iter().zip(b.beacons.iter()) {
        assert_eq!(x, y);
    }
    assert_eq!(a.demand.len(), b.demand.len());
    for (x, y) in a.demand.iter().zip(b.demand.iter()) {
        assert_eq!(x.block, y.block);
        assert_eq!(x.du.to_bits(), y.du.to_bits());
    }
    assert_eq!(a.sketches, b.sketches);
}

#[test]
fn snapshot_roundtrips_through_disk_losslessly() {
    let (world, dns) = mini_setup();
    let source = EventSource::new(&world, CdnConfig::default(), 4);
    let mut engine = IngestEngine::for_source(
        StreamConfig::default(),
        &source,
        ResolverMap::from_dns(&dns),
    );
    engine.ingest_epoch(&source);
    engine.ingest_epoch(&source);
    let snap = engine.snapshot();

    let path = tmp_path("cellstream_roundtrip.json");
    snap.write_to(&path).expect("write");
    let back = Snapshot::read_from(&path).expect("read");
    assert_eq!(snap, back, "disk roundtrip must be lossless");
    assert_eq!(snap.to_json(), back.to_json());
    assert_eq!(back.epochs_done, 2);
    assert_eq!(back.epochs_total, 4);
}

#[test]
fn unknown_snapshot_version_is_rejected() {
    let (world, dns) = mini_setup();
    let source = EventSource::new(&world, CdnConfig::default(), 2);
    let mut engine = IngestEngine::for_source(
        StreamConfig::default(),
        &source,
        ResolverMap::from_dns(&dns),
    );
    engine.ingest_epoch(&source);
    let json = engine.snapshot().to_json();
    let tampered = json.replacen("\"version\": 1", "\"version\": 999", 1);
    assert_ne!(json, tampered, "tamper target must exist in the JSON");
    let err = Snapshot::from_json(&tampered).unwrap_err();
    assert!(
        err.to_string().contains("version"),
        "unexpected error: {err}"
    );
}

#[test]
fn finished_engine_refuses_further_epochs() {
    let (world, dns) = mini_setup();
    let source = EventSource::new(&world, CdnConfig::default(), 2);
    let mut engine = IngestEngine::for_source(
        StreamConfig::default(),
        &source,
        ResolverMap::from_dns(&dns),
    );
    engine.run_to_end(&source);
    assert!(engine.finished());
    assert_eq!(engine.epochs_done(), 2);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.ingest_epoch(&source);
    }));
    assert!(result.is_err(), "ingesting past the end must panic");
}
