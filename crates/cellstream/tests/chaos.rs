//! Chaos suite: runs killed and corrupted at deterministic points must
//! recover from the last good checkpoint and end **byte-identical** to a
//! fault-free run — same canonical snapshot JSON, same bit-exact
//! datasets, same sketches. Each scenario is a seeded [`FaultPlan`], so
//! a failure here reproduces exactly.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use cdnsim::{CdnConfig, EpochGate, EventSource, SourceErrorKind};
use cellstream::{
    run_chaos, ChaosError, ChaosReport, CheckpointStore, Fault, FaultInjector, FaultPlan,
    IngestEngine, IngestError, ResolverMap, StreamConfig, StreamOutputs,
};
use dnssim::{generate_dns, DnsSim};
use worldgen::{World, WorldConfig};

const EPOCHS: u32 = 6;

fn cfg() -> StreamConfig {
    StreamConfig {
        shards: 3,
        ..Default::default()
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn mini_setup() -> (World, DnsSim) {
    let world = World::generate(WorldConfig::mini());
    let dns = generate_dns(&world);
    (world, dns)
}

/// The fault-free truth: final canonical snapshot plus folded outputs.
fn reference(world: &World, dns: &DnsSim) -> (String, StreamOutputs) {
    let source = EventSource::new(world, CdnConfig::default(), EPOCHS);
    let mut engine = IngestEngine::for_source(cfg(), &source, ResolverMap::from_dns(dns));
    engine.run_to_end(&source);
    (engine.snapshot().to_json(), engine.finalize())
}

/// Run the full stream under `plan`, recovering through a fresh store.
fn run_plan(
    world: &World,
    dns: &DnsSim,
    dir: &Path,
    plan: FaultPlan,
) -> (IngestEngine, ChaosReport) {
    let injector = Arc::new(FaultInjector::new(plan));
    let gate: Arc<dyn EpochGate> = injector.clone();
    let source = EventSource::new(world, CdnConfig::default(), EPOCHS).with_gate(gate);
    let store = CheckpointStore::new(dir, 3);
    run_chaos(
        &source,
        cfg(),
        &ResolverMap::from_dns(dns),
        &store,
        &injector,
        8,
    )
    .expect("chaos run recovers")
}

fn assert_outputs_eq(a: &StreamOutputs, b: &StreamOutputs) {
    assert_eq!(a.beacons.len(), b.beacons.len());
    for (x, y) in a.beacons.iter().zip(b.beacons.iter()) {
        assert_eq!(x, y);
    }
    assert_eq!(a.demand.len(), b.demand.len());
    for (x, y) in a.demand.iter().zip(b.demand.iter()) {
        assert_eq!(x.block, y.block);
        assert_eq!(x.asn, y.asn);
        assert_eq!(x.du.to_bits(), y.du.to_bits(), "bit-exact demand");
    }
    assert_eq!(a.sketches, b.sketches);
}

/// Plan A: the process dies mid-epoch while the newest checkpoint on
/// disk is bit-flipped. Recovery must reject the corrupt file, fall back
/// one checkpoint, and replay forward.
#[test]
fn crash_with_flipped_newest_checkpoint_recovers_exactly() {
    let (world, dns) = mini_setup();
    let (ref_json, ref_outputs) = reference(&world, &dns);
    let dir = tmp_dir("chaos_plan_a");
    let plan = FaultPlan {
        seed: 1,
        faults: vec![
            Fault::Crash {
                epoch: 3,
                after_events: 100,
            },
            Fault::FlipCheckpointBytes { epoch: 3, flips: 2 },
        ],
    };
    let (engine, report) = run_plan(&world, &dns, &dir, plan);
    assert_eq!(
        engine.snapshot().to_json(),
        ref_json,
        "byte-identical state"
    );
    assert_outputs_eq(&engine.finalize(), &ref_outputs);
    assert_eq!(report.crashes, 1, "{:?}", report.log);
    assert!(report.checkpoints_rejected >= 1, "{:?}", report.log);
    let _ = fs::remove_dir_all(&dir);
}

/// Plan B: two shards die in the same epoch and the only retained
/// checkpoint is truncated, so both shards rebuild from scratch by
/// replaying their slice of every done epoch.
#[test]
fn multi_shard_kill_with_truncated_checkpoint_recovers_exactly() {
    let (world, dns) = mini_setup();
    let (ref_json, ref_outputs) = reference(&world, &dns);
    let dir = tmp_dir("chaos_plan_b");
    let plan = FaultPlan {
        seed: 2,
        faults: vec![
            Fault::ShardKill {
                epoch: 1,
                shard: 0,
                after_events: 30,
            },
            Fault::ShardKill {
                epoch: 1,
                shard: 2,
                after_events: 30,
            },
            Fault::TruncateCheckpoint {
                epoch: 1,
                keep_bytes: 64,
            },
        ],
    };
    let (engine, report) = run_plan(&world, &dns, &dir, plan);
    assert_eq!(
        engine.snapshot().to_json(),
        ref_json,
        "byte-identical state"
    );
    assert_outputs_eq(&engine.finalize(), &ref_outputs);
    assert_eq!(report.shard_recoveries, 2, "{:?}", report.log);
    // Both shards found no usable base (the sole checkpoint was truncated)
    // and replayed epochs 0..2 from the source.
    assert_eq!(report.replayed_epochs, 4, "{:?}", report.log);
    assert!(report.checkpoints_rejected >= 2, "{:?}", report.log);
    assert_eq!(report.crashes, 0);
    let _ = fs::remove_dir_all(&dir);
}

/// Plan C: a stalling source, then a boundary crash with the two newest
/// checkpoints corrupted in different ways — recovery must walk back two
/// files to the last good one.
#[test]
fn boundary_crash_with_two_bad_checkpoints_recovers_exactly() {
    let (world, dns) = mini_setup();
    let (ref_json, ref_outputs) = reference(&world, &dns);
    let dir = tmp_dir("chaos_plan_c");
    let plan = FaultPlan {
        seed: 3,
        faults: vec![
            Fault::SourceStall { epoch: 0, times: 3 },
            Fault::Crash {
                epoch: 4,
                after_events: 0,
            },
            Fault::FlipCheckpointBytes { epoch: 4, flips: 1 },
            Fault::TruncateCheckpoint {
                epoch: 3,
                keep_bytes: 10,
            },
        ],
    };
    let (engine, report) = run_plan(&world, &dns, &dir, plan);
    assert_eq!(
        engine.snapshot().to_json(),
        ref_json,
        "byte-identical state"
    );
    assert_outputs_eq(&engine.finalize(), &ref_outputs);
    assert_eq!(report.stalls, 3, "{:?}", report.log);
    assert_eq!(report.crashes, 1, "{:?}", report.log);
    assert!(
        report.checkpoints_rejected >= 2,
        "must skip both corrupt files: {:?}",
        report.log
    );
    let _ = fs::remove_dir_all(&dir);
}

/// A permanent source failure is not recoverable: the supervisor
/// surfaces a clean typed error instead of panicking or spinning.
#[test]
fn permanent_source_failure_is_a_clean_error() {
    let (world, dns) = mini_setup();
    let dir = tmp_dir("chaos_source_fail");
    let injector = Arc::new(FaultInjector::new(FaultPlan {
        seed: 4,
        faults: vec![Fault::SourceFail { epoch: 2 }],
    }));
    let gate: Arc<dyn EpochGate> = injector.clone();
    let source = EventSource::new(&world, CdnConfig::default(), EPOCHS).with_gate(gate);
    let store = CheckpointStore::new(&dir, 3);
    let err = run_chaos(
        &source,
        cfg(),
        &ResolverMap::from_dns(&dns),
        &store,
        &injector,
        8,
    )
    .expect_err("permanent failure cannot be recovered");
    match err {
        ChaosError::Ingest(IngestError::Source(e)) => {
            assert_eq!(e.epoch, 2);
            assert_eq!(e.kind, SourceErrorKind::Failed);
        }
        other => panic!("unexpected error: {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

/// An unrecoverable crash loop (crashing at a boundary with no
/// checkpoint possible before it, over and over) exhausts the restart
/// budget instead of spinning forever.
#[test]
fn restart_budget_is_enforced() {
    let (world, dns) = mini_setup();
    let dir = tmp_dir("chaos_budget");
    // Ten distinct crash faults all at epoch 0: each restart re-crashes
    // before the first checkpoint can be written.
    let faults = (0..10)
        .map(|_| Fault::Crash {
            epoch: 0,
            after_events: 0,
        })
        .collect();
    let injector = Arc::new(FaultInjector::new(FaultPlan { seed: 5, faults }));
    let gate: Arc<dyn EpochGate> = injector.clone();
    let source = EventSource::new(&world, CdnConfig::default(), EPOCHS).with_gate(gate);
    let store = CheckpointStore::new(&dir, 3);
    let err = run_chaos(
        &source,
        cfg(),
        &ResolverMap::from_dns(&dns),
        &store,
        &injector,
        3,
    )
    .expect_err("restart budget must trip");
    match err {
        ChaosError::RestartsExhausted { limit } => assert_eq!(limit, 3),
        other => panic!("unexpected error: {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

/// The mid-epoch fault offsets used by the plans above actually fire:
/// every epoch of the mini stream carries comfortably more events than
/// the largest `after_events` any plan uses.
#[test]
fn fault_offsets_are_reachable() {
    let (world, _) = mini_setup();
    let source = EventSource::new(&world, CdnConfig::default(), EPOCHS);
    let router = cellstream::ShardRouter::new(cfg().shards);
    for epoch in 0..EPOCHS {
        let mut per_shard = vec![0u64; cfg().shards as usize];
        for ev in source.epoch(epoch) {
            per_shard[router.shard_of(ev.block()) as usize] += 1;
        }
        let total: u64 = per_shard.iter().sum();
        assert!(total > 300, "epoch {epoch} has only {total} events");
        for (shard, &n) in per_shard.iter().enumerate() {
            assert!(n > 30, "epoch {epoch} shard {shard} has only {n} events");
        }
    }
}
