//! Property tests for checkpoint durability: every snapshot the engine
//! can express round-trips losslessly through its canonical JSON (and
//! through a sealed file on disk), and **any** single-byte corruption or
//! truncation of the sealed bytes is rejected by the integrity footer —
//! CRC-32 catches every burst error up to 32 bits, so a one-byte change
//! can never restore as a silently-wrong engine.

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;

use cellstream::{
    seal, unseal, BeaconRow, DemandRow, HyperLogLog, ResolverRow, ShardSnapshot, Snapshot,
    SpaceSaving, StreamConfig, SNAPSHOT_VERSION,
};
use netaddr::{Asn, Block24, Block48, BlockId};

fn arb_block() -> impl Strategy<Value = BlockId> {
    prop_oneof![
        any::<u32>().prop_map(|i| BlockId::V4(Block24::from_index(i))),
        any::<u64>().prop_map(|i| BlockId::V6(Block48::from_index(i))),
    ]
}

fn arb_beacon() -> impl Strategy<Value = BeaconRow> {
    (
        arb_block(),
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(block, asn, hits_total, netinfo_hits, cellular_hits, wifi_hits, other_hits)| {
                BeaconRow {
                    block,
                    asn: Asn(asn),
                    hits_total,
                    netinfo_hits,
                    cellular_hits,
                    wifi_hits,
                    other_hits,
                }
            },
        )
}

fn arb_demand() -> impl Strategy<Value = DemandRow> {
    // Any finite float round-trips exactly through serde_json's
    // shortest-representation encoding; only NaN/∞ (unrepresentable in
    // JSON) are excluded by the bounded range.
    (arb_block(), any::<u32>(), -1.0e12f64..1.0e12, any::<u32>()).prop_map(
        |(block, asn, acc, days_seen)| DemandRow {
            block,
            asn: Asn(asn),
            acc,
            days_seen,
        },
    )
}

fn arb_resolver(precision: u8) -> impl Strategy<Value = ResolverRow> {
    (any::<u32>(), prop::collection::vec(any::<u64>(), 0..60)).prop_map(move |(resolver, items)| {
        let mut sketch = HyperLogLog::new(precision);
        for i in items {
            sketch.insert_u64(i);
        }
        ResolverRow { resolver, sketch }
    })
}

fn arb_heavy(capacity: usize) -> impl Strategy<Value = SpaceSaving> {
    prop::collection::vec((any::<u32>(), 1u32..=1_000), 0..40).prop_map(move |offers| {
        let mut s = SpaceSaving::new(capacity);
        for (i, w) in offers {
            s.offer(BlockId::V4(Block24::from_index(i)), w as f64);
        }
        s
    })
}

fn arb_shard(precision: u8, capacity: usize) -> impl Strategy<Value = ShardSnapshot> {
    (
        any::<u64>(),
        prop::collection::vec(arb_beacon(), 0..6),
        prop::collection::vec(arb_demand(), 0..6),
        prop::collection::vec(arb_resolver(precision), 0..4),
        arb_heavy(capacity),
    )
        .prop_map(
            |(events_seen, beacons, demand, resolvers, heavy)| ShardSnapshot {
                events_seen,
                beacons,
                demand,
                resolvers,
                heavy,
            },
        )
}

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (1u32..=3, 4u8..=8, 1usize..=8).prop_flat_map(|(shards, precision, capacity)| {
        (
            prop::collection::vec(arb_shard(precision, capacity), shards as usize),
            0u32..=12,
            0u32..=12,
            1u32..=30,
        )
            .prop_map(
                move |(shard_vec, epochs_total, epochs_done, smoothing_days)| Snapshot {
                    version: SNAPSHOT_VERSION,
                    config: StreamConfig {
                        shards,
                        hll_precision: precision,
                        heavy_capacity: capacity,
                    },
                    epochs_total,
                    epochs_done,
                    smoothing_days,
                    shards: shard_vec,
                },
            )
    })
}

/// True when the sealed-checkpoint read path rejects `bytes`: either the
/// bytes are no longer UTF-8 (rejected before unsealing) or the footer
/// check fails.
fn corruption_detected(bytes: Vec<u8>) -> bool {
    match String::from_utf8(bytes) {
        Err(_) => true,
        Ok(s) => unseal(&s).is_err(),
    }
}

proptest! {
    /// Canonical JSON is lossless for every expressible snapshot.
    #[test]
    fn snapshot_json_roundtrips(snap in arb_snapshot()) {
        let back = Snapshot::from_json(&snap.to_json());
        prop_assert!(back.is_ok(), "roundtrip failed: {:?}", back.err());
        prop_assert_eq!(back.unwrap(), snap);
    }

    /// The sealed on-disk form (atomic write + integrity footer) is just
    /// as lossless.
    #[test]
    fn snapshot_file_roundtrips(snap in arb_snapshot()) {
        let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("snapshot_props");
        fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("roundtrip.json");
        snap.write_to(&path).expect("write sealed snapshot");
        let back = Snapshot::read_from(&path).expect("read sealed snapshot");
        prop_assert_eq!(back, snap);
    }

    /// Flipping any nonzero bit pattern into any single byte of a sealed
    /// checkpoint is detected, wherever it lands — body, footer, or the
    /// footer's own length/CRC fields.
    #[test]
    fn any_single_byte_corruption_is_rejected(
        snap in arb_snapshot(),
        at in any::<prop::sample::Index>(),
        delta in 1u8..=255,
    ) {
        let mut bytes = seal(&snap.to_json()).into_bytes();
        let i = at.index(bytes.len());
        bytes[i] ^= delta;
        prop_assert!(corruption_detected(bytes), "byte {} xor {:#04x} went unnoticed", i, delta);
    }

    /// Every strict prefix of a sealed checkpoint — any torn write the
    /// atomic rename could conceivably have let through — is rejected.
    #[test]
    fn any_truncation_is_rejected(snap in arb_snapshot(), at in any::<prop::sample::Index>()) {
        let sealed = seal(&snap.to_json()).into_bytes();
        let keep = at.index(sealed.len());
        prop_assert!(corruption_detected(sealed[..keep].to_vec()), "prefix of {} bytes passed", keep);
    }
}
