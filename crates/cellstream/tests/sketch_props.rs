//! Property tests for the mergeable sketches: the merge laws the sharded
//! engine relies on, and the documented error bounds.
//!
//! HyperLogLog's register-max merge is a true semilattice join —
//! commutative, associative, and idempotent, asserted *exactly* (`Eq` on
//! register state). Space-Saving's replay merge is **not** idempotent
//! (re-merging a sketch into itself double-counts, by design: merge means
//! "combine two disjoint substreams"), and counter *insertion order* is
//! order-dependent even when the estimates are exact — so its laws are
//! asserted up to the canonical [`SpaceSaving::top`] ordering, in the
//! under-capacity regime where estimates are exact, with integer-valued
//! weights so float addition commutes exactly. Over-capacity behaviour is
//! covered by the bound properties instead, matching the module docs.

use proptest::prelude::*;

use cellstream::{HyperLogLog, SpaceSaving};
use netaddr::{Block24, BlockId};

fn hll_of(precision: u8, items: &[u64]) -> HyperLogLog {
    let mut h = HyperLogLog::new(precision);
    for &i in items {
        h.insert_u64(i);
    }
    h
}

fn merged(a: &HyperLogLog, b: &HyperLogLog) -> HyperLogLog {
    let mut m = a.clone();
    m.merge(b);
    m
}

fn b(i: u32) -> BlockId {
    BlockId::V4(Block24::from_index(i))
}

/// A weighted stream over a small key space. Weights are integer-valued
/// floats (exactly representable, exactly summable in any order below
/// 2^53) so under-capacity estimates carry no float-ordering noise.
fn arb_stream() -> impl Strategy<Value = Vec<(u32, f64)>> {
    prop::collection::vec(
        (0u32..48, 1u32..=1_000).prop_map(|(k, w)| (k, w as f64)),
        0..200,
    )
}

fn ss_of(capacity: usize, stream: &[(u32, f64)]) -> SpaceSaving {
    let mut s = SpaceSaving::new(capacity);
    for &(k, w) in stream {
        s.offer(b(k), w);
    }
    s
}

fn ss_merged(a: &SpaceSaving, other: &SpaceSaving) -> SpaceSaving {
    let mut m = a.clone();
    m.merge(other);
    m
}

fn true_weights(streams: &[&[(u32, f64)]]) -> std::collections::BTreeMap<u32, f64> {
    let mut truth = std::collections::BTreeMap::new();
    for stream in streams {
        for &(k, w) in *stream {
            *truth.entry(k).or_insert(0.0) += w;
        }
    }
    truth
}

proptest! {
    /// HLL merge is commutative: A ∪ B == B ∪ A, register for register.
    #[test]
    fn hll_merge_is_commutative(
        p in 4u8..=10,
        xs in prop::collection::vec(any::<u64>(), 0..300),
        ys in prop::collection::vec(any::<u64>(), 0..300),
    ) {
        let a = hll_of(p, &xs);
        let c = hll_of(p, &ys);
        prop_assert_eq!(merged(&a, &c), merged(&c, &a));
    }

    /// HLL merge is associative: (A ∪ B) ∪ C == A ∪ (B ∪ C).
    #[test]
    fn hll_merge_is_associative(
        p in 4u8..=10,
        xs in prop::collection::vec(any::<u64>(), 0..200),
        ys in prop::collection::vec(any::<u64>(), 0..200),
        zs in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let a = hll_of(p, &xs);
        let c = hll_of(p, &ys);
        let d = hll_of(p, &zs);
        prop_assert_eq!(merged(&merged(&a, &c), &d), merged(&a, &merged(&c, &d)));
    }

    /// HLL merge is idempotent: A ∪ A == A.
    #[test]
    fn hll_merge_is_idempotent(
        p in 4u8..=10,
        xs in prop::collection::vec(any::<u64>(), 0..300),
    ) {
        let a = hll_of(p, &xs);
        prop_assert_eq!(merged(&a, &a), a);
    }

    /// Merging sketches of two substreams yields *exactly* the sketch of
    /// the concatenated stream — the property that makes per-shard
    /// sketches equal to a single-shard run's at any shard count.
    #[test]
    fn hll_merge_equals_union_sketch(
        p in 4u8..=10,
        xs in prop::collection::vec(any::<u64>(), 0..300),
        ys in prop::collection::vec(any::<u64>(), 0..300),
    ) {
        let union: Vec<u64> = xs.iter().chain(ys.iter()).copied().collect();
        prop_assert_eq!(merged(&hll_of(p, &xs), &hll_of(p, &ys)), hll_of(p, &union));
    }

    /// The estimate stays within the documented standard error: 6σ plus
    /// a small absolute slack for the tiny-cardinality regime. (3σ would
    /// already hold with ~99.7% probability per draw; 6σ makes the test
    /// deterministic-in-practice across proptest's case volume.)
    #[test]
    fn hll_estimate_is_within_documented_error(p in 8u8..=12, n in 0u64..3_000) {
        let mut h = HyperLogLog::new(p);
        for i in 0..n {
            h.insert_u64(i);
        }
        let e = h.estimate();
        let tol = 6.0 * h.relative_error() * n as f64 + 8.0;
        prop_assert!(
            (e - n as f64).abs() <= tol,
            "n={}, estimate={}, tolerance={}", n, e, tol
        );
    }

    /// Under capacity, Space-Saving is exact and merge is commutative up
    /// to the canonical top() ordering: same counters, same (exact)
    /// estimates, zero error, either merge order.
    #[test]
    fn spacesaving_merge_commutes_under_capacity(
        xs in arb_stream(),
        ys in arb_stream(),
    ) {
        // Key space is 0..48, so capacity 64 can never evict.
        let a = ss_of(64, &xs);
        let c = ss_of(64, &ys);
        let ac = ss_merged(&a, &c);
        let ca = ss_merged(&c, &a);
        prop_assert_eq!(ac.top(64), ca.top(64));
        prop_assert_eq!(ac.total_weight(), ca.total_weight());
        prop_assert_eq!(ac.error_bound(), 0.0);

        // And exact: every counter equals the true weight, error 0.
        let truth = true_weights(&[&xs, &ys]);
        for h in ac.top(64) {
            let BlockId::V4(block) = h.block else { panic!("v4 keys only") };
            prop_assert_eq!(h.weight, truth[&block.index()]);
            prop_assert_eq!(h.error, 0.0);
        }
    }

    /// Under capacity, merge grouping does not matter either:
    /// (A ⊎ B) ⊎ C == A ⊎ (B ⊎ C) up to canonical ordering.
    #[test]
    fn spacesaving_merge_associates_under_capacity(
        xs in arb_stream(),
        ys in arb_stream(),
        zs in arb_stream(),
    ) {
        let a = ss_of(64, &xs);
        let c = ss_of(64, &ys);
        let d = ss_of(64, &zs);
        let left = ss_merged(&ss_merged(&a, &c), &d);
        let right = ss_merged(&a, &ss_merged(&c, &d));
        prop_assert_eq!(left.top(64), right.top(64));
        prop_assert_eq!(left.total_weight(), right.total_weight());
    }

    /// Merging with an empty sketch is the identity (in both directions,
    /// up to canonical ordering).
    #[test]
    fn spacesaving_empty_merge_is_identity(xs in arb_stream()) {
        let s = ss_of(16, &xs);
        let empty = SpaceSaving::new(16);
        prop_assert_eq!(ss_merged(&s, &empty).top(16), s.top(16));
        prop_assert_eq!(ss_merged(&empty, &s).top(16), s.top(16));
        prop_assert_eq!(ss_merged(&s, &empty).total_weight(), s.total_weight());
    }

    /// The documented per-key bounds hold for a single over-capacity
    /// sketch: `true ≤ estimate` and `estimate − error ≤ true` for every
    /// tracked key, total weight is exact, and any key whose true weight
    /// exceeds `W / capacity` is tracked.
    #[test]
    fn spacesaving_bounds_hold_over_capacity(xs in arb_stream()) {
        let s = ss_of(8, &xs);
        let truth = true_weights(&[&xs]);
        let total: f64 = truth.values().sum();
        prop_assert_eq!(s.total_weight(), total);
        for h in s.entries() {
            let BlockId::V4(block) = h.block else { panic!("v4 keys only") };
            let t = truth.get(&block.index()).copied().unwrap_or(0.0);
            prop_assert!(t <= h.weight, "under-count: true {} > est {}", t, h.weight);
            prop_assert!(
                h.weight - h.error <= t,
                "bound violated: est {} − err {} > true {}", h.weight, h.error, t
            );
        }
        let tracked: Vec<u32> = s
            .entries()
            .iter()
            .map(|h| match h.block {
                BlockId::V4(block) => block.index(),
                BlockId::V6(_) => unreachable!("v4 keys only"),
            })
            .collect();
        for (&k, &t) in &truth {
            if t > total / 8.0 {
                prop_assert!(tracked.contains(&k), "heavy key {} untracked", k);
            }
        }
    }

    /// The module-level tracking guarantee, pinned for *any* capacity
    /// (not just the fixed sizes above): once the sketch is full,
    /// `error_bound()` — the smallest live counter — never exceeds
    /// `total_weight / capacity`, and every key whose true weight is
    /// strictly above that threshold is tracked. Weights are
    /// integer-valued (see [`arb_stream`]), so counter sums and the
    /// total are exact and the comparisons need no float slack.
    #[test]
    fn spacesaving_tracking_guarantee_holds_at_any_capacity(
        xs in arb_stream(),
        cap in 1usize..=24,
    ) {
        let s = ss_of(cap, &xs);
        let truth = true_weights(&[&xs]);
        let total: f64 = truth.values().sum();
        if s.len() < cap {
            prop_assert_eq!(s.error_bound(), 0.0, "not full yet: bound must be 0");
        } else {
            prop_assert!(
                s.error_bound() <= total / cap as f64,
                "error_bound {} > W/m = {}/{}", s.error_bound(), total, cap
            );
        }
        for (&k, &t) in &truth {
            if t > total / cap as f64 {
                prop_assert!(
                    s.entries().iter().any(|h| h.block == b(k)),
                    "key {} with true weight {} > {}/{} fell out of the sketch",
                    k, t, total, cap
                );
            }
        }
    }

    /// The per-key bounds survive merging arbitrary 3-way splits of a
    /// stream through capacity-limited sketches.
    #[test]
    fn spacesaving_bounds_survive_arbitrary_splits(
        stream in arb_stream(),
        routes in prop::collection::vec(0u8..3, 0..200),
    ) {
        let mut parts: [Vec<(u32, f64)>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (i, &ev) in stream.iter().enumerate() {
            let r = routes.get(i).copied().unwrap_or(0) as usize;
            parts[r].push(ev);
        }
        let mut merged_sketch = ss_of(8, &parts[0]);
        merged_sketch.merge(&ss_of(8, &parts[1]));
        merged_sketch.merge(&ss_of(8, &parts[2]));

        let truth = true_weights(&[&stream]);
        let total: f64 = truth.values().sum();
        prop_assert_eq!(merged_sketch.total_weight(), total);
        for h in merged_sketch.entries() {
            let BlockId::V4(block) = h.block else { panic!("v4 keys only") };
            let t = truth.get(&block.index()).copied().unwrap_or(0.0);
            prop_assert!(t <= h.weight);
            prop_assert!(h.weight - h.error <= t);
        }
    }
}
