//! HyperLogLog distinct-count sketch.
//!
//! Flajolet et al.'s estimator with the linear-counting small-range
//! correction: `m = 2^p` one-byte registers record, per hashed item, the
//! longest run of leading zero bits seen in the item's bucket. The
//! estimate's standard error is `1.04 / sqrt(m)` (< 1.63% at the default
//! precision 12, 4 KiB of state), and two sketches over different event
//! substreams merge by register-wise max into *exactly* the sketch of the
//! union — the property the sharded ingest engine relies on: per-shard
//! sketches merged at snapshot time equal the single-shard sketch bit for
//! bit, regardless of shard count.

use serde::{Deserialize, Serialize};

/// Lowest supported precision (16 registers).
pub const MIN_PRECISION: u8 = 4;
/// Highest supported precision (65,536 registers, 64 KiB per sketch).
pub const MAX_PRECISION: u8 = 16;

/// A HyperLogLog sketch with `2^precision` registers.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HyperLogLog {
    precision: u8,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// An empty sketch.
    ///
    /// # Panics
    /// Panics when `precision` is outside
    /// [`MIN_PRECISION`]`..=`[`MAX_PRECISION`].
    pub fn new(precision: u8) -> Self {
        assert!(
            (MIN_PRECISION..=MAX_PRECISION).contains(&precision),
            "precision {precision} outside {MIN_PRECISION}..={MAX_PRECISION}"
        );
        HyperLogLog {
            precision,
            registers: vec![0; 1 << precision],
        }
    }

    /// The sketch's precision parameter.
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Number of registers (`m = 2^precision`).
    pub fn registers(&self) -> usize {
        self.registers.len()
    }

    /// Standard error of [`estimate`](Self::estimate): `1.04 / sqrt(m)`.
    pub fn relative_error(&self) -> f64 {
        1.04 / (self.registers.len() as f64).sqrt()
    }

    /// Observe an item by its 64-bit id. Ids are scrambled through a
    /// finalizer before bucketing, so structured ids (e.g. sequential
    /// block indices) are fine.
    pub fn insert_u64(&mut self, item: u64) {
        self.insert_hash(mix64(item));
    }

    /// Observe an item by an already well-mixed 64-bit hash.
    pub fn insert_hash(&mut self, hash: u64) {
        let idx = (hash >> (64 - self.precision)) as usize;
        // Rank: position of the first 1 in the remaining bits, 1-based,
        // saturating when they are all zero.
        let rest = hash << self.precision;
        let rank = if rest == 0 {
            64 - self.precision + 1
        } else {
            rest.leading_zeros() as u8 + 1
        };
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Estimated number of distinct items observed.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let mut sum = 0.0;
        let mut zeros = 0usize;
        for &r in &self.registers {
            sum += 1.0 / (1u64 << r) as f64;
            if r == 0 {
                zeros += 1;
            }
        }
        let raw = alpha(self.registers.len()) * m * m / sum;
        // Linear counting handles the small-cardinality regime where the
        // raw estimator is biased high.
        if raw <= 2.5 * m && zeros > 0 {
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// True when no item was ever observed.
    pub fn is_empty(&self) -> bool {
        self.registers.iter().all(|&r| r == 0)
    }

    /// Fold another sketch into this one: after the merge, `self` is
    /// exactly the sketch that would have observed both input streams.
    ///
    /// # Panics
    /// Panics when precisions differ.
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(
            self.precision, other.precision,
            "cannot merge HLLs of different precision"
        );
        for (a, &b) in self.registers.iter_mut().zip(&other.registers) {
            if b > *a {
                *a = b;
            }
        }
    }

    /// Bytes of register state (the sketch's memory bound).
    pub fn state_bytes(&self) -> usize {
        self.registers.len()
    }
}

/// Bias-correction constant `alpha_m`.
fn alpha(m: usize) -> f64 {
    match m {
        16 => 0.673,
        32 => 0.697,
        64 => 0.709,
        _ => 0.7213 / (1.0 + 1.079 / m as f64),
    }
}

/// SplitMix64 finalizer: a cheap, well-distributed 64→64 bit mix.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimates_zero() {
        let h = HyperLogLog::new(12);
        assert!(h.is_empty());
        assert_eq!(h.estimate(), 0.0);
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut h = HyperLogLog::new(12);
        for _ in 0..1000 {
            h.insert_u64(42);
        }
        let e = h.estimate();
        assert!((0.5..=1.5).contains(&e), "estimate {e} for one item");
    }

    #[test]
    fn estimate_within_three_sigma() {
        for &n in &[100u64, 1_000, 30_000] {
            let mut h = HyperLogLog::new(12);
            for i in 0..n {
                h.insert_u64(i);
            }
            let e = h.estimate();
            let tol = 3.0 * h.relative_error() * n as f64 + 1.0;
            assert!(
                (e - n as f64).abs() <= tol,
                "n={n}: estimate {e} off by more than {tol}"
            );
        }
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new(10);
        let mut b = HyperLogLog::new(10);
        let mut u = HyperLogLog::new(10);
        for i in 0..5_000u64 {
            if i % 2 == 0 {
                a.insert_u64(i);
            }
            if i % 3 == 0 {
                b.insert_u64(i);
            }
            if i % 2 == 0 || i % 3 == 0 {
                u.insert_u64(i);
            }
        }
        a.merge(&b);
        assert_eq!(a, u, "merge must be exactly the union sketch");
    }

    #[test]
    fn merge_is_commutative_and_idempotent() {
        let mut a = HyperLogLog::new(8);
        let mut b = HyperLogLog::new(8);
        for i in 0..500u64 {
            a.insert_u64(i);
            b.insert_u64(i + 250);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let before = ab.clone();
        ab.merge(&before.clone());
        assert_eq!(ab, before, "self-merge must not change the sketch");
    }

    #[test]
    #[should_panic(expected = "precision")]
    fn precision_out_of_range_panics() {
        let _ = HyperLogLog::new(3);
    }

    #[test]
    #[should_panic(expected = "different precision")]
    fn mixed_precision_merge_panics() {
        let mut a = HyperLogLog::new(8);
        let b = HyperLogLog::new(9);
        a.merge(&b);
    }
}
