//! The sharded ingest engine: epoch-driven folding, snapshots, finalize.
//!
//! Lifecycle: build an engine sized for an [`EventSource`], call
//! [`IngestEngine::ingest_epoch`] once per epoch (or
//! [`IngestEngine::run_to_end`]), [`IngestEngine::snapshot`] at any epoch
//! boundary, and [`IngestEngine::finalize`] to materialize the datasets
//! and sketch report. [`IngestEngine::restore`] resumes from a snapshot:
//! restore-and-continue is indistinguishable — snapshot-for-snapshot,
//! byte for byte — from a run that was never interrupted.

use netaddr::BlockId;
use serde::{Deserialize, Serialize};

use cdnsim::{
    BeaconDataset, BeaconRecord, DemandDataset, DemandRecord, EventSource, BEACON_PERIOD,
    DEMAND_PERIOD,
};
use dnssim::DnsSim;

use crate::hll::HyperLogLog;
use crate::shard::{ShardRouter, ShardState};
use crate::snapshot::Snapshot;
use crate::spacesaving::{HeavyHitter, SpaceSaving};

/// Ingest knobs. Serialized into every snapshot so a restore can verify
/// it resumes with the state layout it was checkpointed under.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Number of shards the stream is partitioned over.
    pub shards: u32,
    /// HyperLogLog precision for per-resolver distinct-client sketches
    /// (standard error `1.04 / 2^(p/2)`).
    pub hll_precision: u8,
    /// Counter budget of each shard's demand heavy-hitter sketch.
    pub heavy_capacity: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            shards: 4,
            hll_precision: 12,
            heavy_capacity: 64,
        }
    }
}

/// Block → resolver assignment used to attribute demand to resolvers.
///
/// The paper's platform sees which resolver asked for the DNS name that
/// routed a client; here each block is attributed to its strongest
/// affinity (deterministic: highest weight, lowest resolver id on ties).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResolverMap {
    /// Sorted by block for binary-search lookup.
    map: Vec<(BlockId, u32)>,
}

impl ResolverMap {
    /// A map that attributes nothing (resolver sketches stay empty).
    pub fn empty() -> Self {
        ResolverMap::default()
    }

    /// Build from DNS affinities: each block keeps its strongest resolver.
    pub fn from_dns(dns: &DnsSim) -> Self {
        let mut best: std::collections::BTreeMap<BlockId, (f32, u32)> =
            std::collections::BTreeMap::new();
        for a in &dns.affinities {
            match best.get(&a.block) {
                Some(&(w, r)) if w > a.weight || (w == a.weight && r <= a.resolver) => {}
                _ => {
                    best.insert(a.block, (a.weight, a.resolver));
                }
            }
        }
        ResolverMap {
            map: best.into_iter().map(|(b, (_, r))| (b, r)).collect(),
        }
    }

    /// The resolver serving a block, when one is assigned.
    pub fn resolver_of(&self, block: BlockId) -> Option<u32> {
        self.map
            .binary_search_by_key(&block, |&(b, _)| b)
            .ok()
            .map(|i| self.map[i].1)
    }

    /// Number of blocks with an assignment.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no block is assigned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Distinct-client estimate for one resolver.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResolverClients {
    /// Resolver id.
    pub resolver: u32,
    /// Estimated distinct client blocks seen in demand events.
    pub estimated_clients: f64,
    /// Standard error of the estimate (relative).
    pub std_error: f64,
}

/// Sketch-derived outputs of a finished (or partial) stream.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SketchReport {
    /// Per-resolver distinct-client estimates, sorted by resolver id.
    pub resolver_clients: Vec<ResolverClients>,
    /// Demand heavy hitters, heaviest first.
    pub heavy_hitters: Vec<HeavyHitter>,
    /// Worst-case over-count of any heavy-hitter estimate.
    pub heavy_error_bound: f64,
    /// Exact total demand weight offered to the heavy-hitter sketch.
    pub total_demand_weight: f64,
}

/// Everything a finished stream folds down to.
#[derive(Clone, Debug)]
pub struct StreamOutputs {
    /// The BEACON dataset (exact: equals batch generation bit for bit
    /// once every epoch was ingested).
    pub beacons: BeaconDataset,
    /// The DEMAND dataset (exact, same caveat).
    pub demand: DemandDataset,
    /// Sketch estimates with their error bounds.
    pub sketches: SketchReport,
}

/// The sharded streaming ingest engine.
pub struct IngestEngine {
    cfg: StreamConfig,
    router: ShardRouter,
    resolver_map: ResolverMap,
    shards: Vec<ShardState>,
    epochs_total: u32,
    epochs_done: u32,
    smoothing_days: u32,
}

impl IngestEngine {
    /// An empty engine sized for `source`'s epoch layout.
    pub fn for_source(cfg: StreamConfig, source: &EventSource<'_>, resolvers: ResolverMap) -> Self {
        Self::with_layout(cfg, source.epochs(), source.smoothing_days(), resolvers)
    }

    /// An empty engine with an explicit epoch layout.
    pub fn with_layout(
        cfg: StreamConfig,
        epochs_total: u32,
        smoothing_days: u32,
        resolvers: ResolverMap,
    ) -> Self {
        let router = ShardRouter::new(cfg.shards);
        let shards = (0..cfg.shards)
            .map(|_| ShardState::new(cfg.hll_precision, cfg.heavy_capacity))
            .collect();
        IngestEngine {
            cfg,
            router,
            resolver_map: resolvers,
            shards,
            epochs_total,
            epochs_done: 0,
            smoothing_days,
        }
    }

    /// Resume from a snapshot. The resolver map is not part of the
    /// snapshot (it is derived state, rebuilt deterministically from the
    /// world); everything else — counters, sketches, progress — is.
    pub fn restore(snapshot: &Snapshot, resolvers: ResolverMap) -> Self {
        IngestEngine {
            cfg: snapshot.config,
            router: ShardRouter::new(snapshot.config.shards),
            resolver_map: resolvers,
            shards: snapshot.shard_states(),
            epochs_total: snapshot.epochs_total,
            epochs_done: snapshot.epochs_done,
            smoothing_days: snapshot.smoothing_days,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Epochs ingested so far.
    pub fn epochs_done(&self) -> u32 {
        self.epochs_done
    }

    /// Total epochs in the stream's layout.
    pub fn epochs_total(&self) -> u32 {
        self.epochs_total
    }

    /// True once every epoch was ingested.
    pub fn finished(&self) -> bool {
        self.epochs_done >= self.epochs_total
    }

    /// Total events folded across all shards.
    pub fn events_seen(&self) -> u64 {
        self.shards.iter().map(|s| s.events_seen()).sum()
    }

    /// Approximate bytes of live ingest state across all shards.
    pub fn state_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.state_bytes()).sum()
    }

    /// Ingest the next epoch from `source`. Returns the epoch index just
    /// folded.
    ///
    /// # Panics
    /// Panics when the stream is already finished or `source`'s layout
    /// does not match the engine's.
    pub fn ingest_epoch(&mut self, source: &EventSource<'_>) -> u32 {
        assert!(
            !self.finished(),
            "all {} epochs already ingested",
            self.epochs_total
        );
        assert_eq!(
            source.epochs(),
            self.epochs_total,
            "source epoch layout changed mid-stream"
        );
        assert_eq!(
            source.smoothing_days(),
            self.smoothing_days,
            "source smoothing window changed mid-stream"
        );
        let epoch = self.epochs_done;
        for ev in source.epoch(epoch) {
            let resolver = self.resolver_map.resolver_of(ev.block());
            let shard = self.router.shard_of(ev.block()) as usize;
            self.shards[shard].apply(&ev, resolver);
        }
        self.epochs_done += 1;
        epoch
    }

    /// Ingest every remaining epoch.
    pub fn run_to_end(&mut self, source: &EventSource<'_>) {
        while !self.finished() {
            self.ingest_epoch(source);
        }
    }

    /// Checkpoint the engine's complete state at the current epoch
    /// boundary. Serialization is canonical: the same engine state always
    /// produces byte-identical JSON.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::capture(
            self.cfg,
            self.epochs_total,
            self.epochs_done,
            self.smoothing_days,
            &self.shards,
        )
    }

    /// Merge all shards down to the datasets and sketch report.
    ///
    /// Counter outputs are exact: after the final epoch they equal
    /// [`cdnsim::generate_beacons`]/[`cdnsim::generate_demand`] bit for
    /// bit, at any shard count. Sketch outputs carry their documented
    /// error bounds instead.
    pub fn finalize(&self) -> StreamOutputs {
        // Blocks are partitioned across shards, so concatenation has no
        // duplicate blocks; the dataset constructors sort.
        let beacon_records: Vec<BeaconRecord> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.beacons.iter().map(|(&block, a)| BeaconRecord {
                    block,
                    asn: a.asn,
                    hits_total: a.hits_total,
                    netinfo_hits: a.netinfo_hits,
                    cellular_hits: a.cellular_hits,
                    wifi_hits: a.wifi_hits,
                    other_hits: a.other_hits,
                })
            })
            .collect();
        let days = self.smoothing_days.max(1) as f64;
        let demand_records: Vec<DemandRecord> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.demand.iter().map(move |(&block, a)| DemandRecord {
                    block,
                    asn: a.asn,
                    du: a.acc / days,
                })
            })
            .collect();

        // Register-max merging makes the per-resolver sketches identical
        // to a single-shard run's.
        let mut resolvers: std::collections::BTreeMap<u32, HyperLogLog> =
            std::collections::BTreeMap::new();
        let mut heavy = SpaceSaving::new(self.cfg.heavy_capacity);
        for shard in &self.shards {
            for (&id, hll) in &shard.resolvers {
                resolvers
                    .entry(id)
                    .and_modify(|m| m.merge(hll))
                    .or_insert_with(|| hll.clone());
            }
            heavy.merge(&shard.heavy);
        }
        let resolver_clients = resolvers
            .iter()
            .map(|(&resolver, hll)| ResolverClients {
                resolver,
                estimated_clients: hll.estimate(),
                std_error: hll.relative_error(),
            })
            .collect();
        let sketches = SketchReport {
            resolver_clients,
            heavy_error_bound: heavy.error_bound(),
            total_demand_weight: heavy.total_weight(),
            heavy_hitters: heavy.top(self.cfg.heavy_capacity),
        };

        StreamOutputs {
            beacons: BeaconDataset::from_records(BEACON_PERIOD, beacon_records),
            demand: DemandDataset::from_raw(DEMAND_PERIOD, demand_records),
            sketches,
        }
    }
}
