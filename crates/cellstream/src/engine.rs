//! The sharded ingest engine: epoch-driven folding, snapshots, finalize.
//!
//! Lifecycle: build an engine sized for an [`EventSource`], call
//! [`IngestEngine::ingest_epoch`] once per epoch (or
//! [`IngestEngine::run_to_end`]), [`IngestEngine::snapshot`] at any epoch
//! boundary, and [`IngestEngine::finalize`] to materialize the datasets
//! and sketch report. [`IngestEngine::restore`] resumes from a snapshot:
//! restore-and-continue is indistinguishable — snapshot-for-snapshot,
//! byte for byte — from a run that was never interrupted.

use std::collections::BTreeSet;
use std::fmt;

use netaddr::{Asn, BlockId};
use serde::{Deserialize, Serialize};

use cdnsim::{
    BeaconDataset, BeaconRecord, DemandDataset, DemandRecord, EventSource, SourceError,
    BEACON_PERIOD, DEMAND_PERIOD,
};
use dnssim::DnsSim;

use crate::hll::{HyperLogLog, MAX_PRECISION, MIN_PRECISION};
use crate::shard::{ShardRouter, ShardState};
use crate::snapshot::Snapshot;
use crate::spacesaving::{HeavyHitter, SpaceSaving};

/// Ingest knobs. Serialized into every snapshot so a restore can verify
/// it resumes with the state layout it was checkpointed under.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Number of shards the stream is partitioned over.
    pub shards: u32,
    /// HyperLogLog precision for per-resolver distinct-client sketches
    /// (standard error `1.04 / 2^(p/2)`).
    pub hll_precision: u8,
    /// Counter budget of each shard's demand heavy-hitter sketch.
    pub heavy_capacity: usize,
}

impl StreamConfig {
    /// Check the knobs are usable before any shard state is allocated,
    /// so degenerate configurations surface as errors instead of
    /// assertion panics deep in the sketch constructors.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 {
            return Err("stream config needs at least one shard".into());
        }
        if !(MIN_PRECISION..=MAX_PRECISION).contains(&self.hll_precision) {
            return Err(format!(
                "hll precision {} outside {MIN_PRECISION}..={MAX_PRECISION}",
                self.hll_precision
            ));
        }
        if self.heavy_capacity == 0 {
            return Err("heavy-hitter sketch needs at least one counter".into());
        }
        Ok(())
    }
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            shards: 4,
            hll_precision: 12,
            heavy_capacity: 64,
        }
    }
}

/// Why an ingest step could not run (the fallible mirror of the panics
/// documented on [`IngestEngine::ingest_epoch`], plus the injected-fault
/// outcomes a chaos harness drives recovery from).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// Every epoch was already ingested.
    Finished {
        /// The stream's total epoch count.
        epochs: u32,
    },
    /// The source's epoch layout or smoothing window does not match the
    /// engine's.
    LayoutMismatch(String),
    /// The configuration failed [`StreamConfig::validate`].
    BadConfig(String),
    /// A snapshot failed validation or does not fit the running engine.
    SnapshotMismatch(String),
    /// The event source stalled or failed (injected via an
    /// [`cdnsim::EpochGate`] or a real collector outage).
    Source(SourceError),
    /// A shard's fold panicked (simulated): its state is poisoned and
    /// must be rebuilt via [`IngestEngine::recover_shard`] before the
    /// engine can checkpoint or make further progress.
    ShardPanic {
        /// Epoch being folded when the shard died.
        epoch: u32,
        /// The poisoned shard.
        shard: u32,
    },
    /// The whole process crashed mid-epoch (simulated): the in-memory
    /// engine is unusable and a restart must restore from the last good
    /// checkpoint.
    Crashed {
        /// Epoch being folded when the crash hit.
        epoch: u32,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Finished { epochs } => {
                write!(f, "all {epochs} epochs already ingested")
            }
            IngestError::LayoutMismatch(why) => write!(f, "{why}"),
            IngestError::BadConfig(why) => write!(f, "{why}"),
            IngestError::SnapshotMismatch(why) => write!(f, "{why}"),
            IngestError::Source(e) => write!(f, "{e}"),
            IngestError::ShardPanic { epoch, shard } => {
                write!(f, "shard {shard} panicked while folding epoch {epoch}")
            }
            IngestError::Crashed { epoch } => {
                write!(f, "process crashed while folding epoch {epoch}")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// What the fold loop should do after consulting an [`IngestObserver`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FoldAction {
    /// Fold the event normally.
    Continue,
    /// Simulate this shard's worker panicking: the shard is poisoned and
    /// stops folding; the epoch still completes for the other shards.
    KillShard,
    /// Simulate the whole process dying mid-epoch: ingest aborts
    /// immediately and the epoch does not count as done.
    CrashProcess,
}

/// Fold-loop hook consulted before every event: the fault-injection seam
/// `faultsim` uses to kill shards and crash the process at deterministic
/// points. Takes `&self` so one injector can serve as both this and an
/// [`cdnsim::EpochGate`] behind an `Arc`.
pub trait IngestObserver {
    /// Decide the fate of the next event. `epoch_events` counts events
    /// already processed this epoch across all shards; `shard_events`
    /// counts events this shard already folded this epoch — both exclude
    /// the current event, so `0` means "before the first event".
    fn before_apply(
        &self,
        epoch: u32,
        shard: u32,
        epoch_events: u64,
        shard_events: u64,
    ) -> FoldAction;
}

/// Block → resolver assignment used to attribute demand to resolvers.
///
/// The paper's platform sees which resolver asked for the DNS name that
/// routed a client; here each block is attributed to its strongest
/// affinity (deterministic: highest weight, lowest resolver id on ties).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResolverMap {
    /// Sorted by block for binary-search lookup.
    map: Vec<(BlockId, u32)>,
}

impl ResolverMap {
    /// A map that attributes nothing (resolver sketches stay empty).
    pub fn empty() -> Self {
        ResolverMap::default()
    }

    /// Build from DNS affinities: each block keeps its strongest resolver.
    pub fn from_dns(dns: &DnsSim) -> Self {
        let mut best: std::collections::BTreeMap<BlockId, (f32, u32)> =
            std::collections::BTreeMap::new();
        for a in &dns.affinities {
            match best.get(&a.block) {
                Some(&(w, r)) if w > a.weight || (w == a.weight && r <= a.resolver) => {}
                _ => {
                    best.insert(a.block, (a.weight, a.resolver));
                }
            }
        }
        ResolverMap {
            map: best.into_iter().map(|(b, (_, r))| (b, r)).collect(),
        }
    }

    /// The resolver serving a block, when one is assigned.
    pub fn resolver_of(&self, block: BlockId) -> Option<u32> {
        self.map
            .binary_search_by_key(&block, |&(b, _)| b)
            .ok()
            .map(|i| self.map[i].1)
    }

    /// Number of blocks with an assignment.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no block is assigned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Distinct-client estimate for one resolver.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResolverClients {
    /// Resolver id.
    pub resolver: u32,
    /// Estimated distinct client blocks seen in demand events.
    pub estimated_clients: f64,
    /// Standard error of the estimate (relative).
    pub std_error: f64,
}

/// Sketch-derived outputs of a finished (or partial) stream.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SketchReport {
    /// Per-resolver distinct-client estimates, sorted by resolver id.
    pub resolver_clients: Vec<ResolverClients>,
    /// Demand heavy hitters, heaviest first.
    pub heavy_hitters: Vec<HeavyHitter>,
    /// Worst-case over-count of any heavy-hitter estimate.
    pub heavy_error_bound: f64,
    /// Exact total demand weight offered to the heavy-hitter sketch.
    pub total_demand_weight: f64,
}

/// Everything a finished stream folds down to.
#[derive(Clone, Debug)]
pub struct StreamOutputs {
    /// The BEACON dataset (exact: equals batch generation bit for bit
    /// once every epoch was ingested).
    pub beacons: BeaconDataset,
    /// The DEMAND dataset (exact, same caveat).
    pub demand: DemandDataset,
    /// Sketch estimates with their error bounds.
    pub sketches: SketchReport,
}

/// Raw per-block counters at an epoch boundary, as accumulated by the
/// shards — no dataset-level normalization applied. Produced by
/// [`IngestEngine::raw_counters`] for the incremental classifier.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RawBlockCounters {
    /// The /24 or /48 block.
    pub block: BlockId,
    /// Origin AS (demand-side ASN wins when the datasets disagree,
    /// matching `cellspot::BlockIndex::build`).
    pub asn: Asn,
    /// NETINFO beacon samples seen so far.
    pub netinfo_hits: u64,
    /// Cellular NETINFO samples seen so far.
    pub cellular_hits: u64,
    /// Smoothed raw demand (`acc / smoothing_days`), *not* globally
    /// normalized.
    pub du: f64,
}

/// The sharded streaming ingest engine.
pub struct IngestEngine {
    cfg: StreamConfig,
    router: ShardRouter,
    resolver_map: ResolverMap,
    shards: Vec<ShardState>,
    epochs_total: u32,
    epochs_done: u32,
    smoothing_days: u32,
    /// Shards whose fold "panicked" (fault injection): their state is
    /// stale and must be rebuilt before the engine can checkpoint.
    poisoned: BTreeSet<u32>,
    /// Set when a simulated process crash hit: the engine is unusable.
    crashed: bool,
    /// Observability sink: epoch/event counters, state-bytes high-water,
    /// recovery counters. Disabled by default (near-zero cost).
    obs: cellobs::Observer,
}

impl IngestEngine {
    /// An empty engine sized for `source`'s epoch layout.
    pub fn for_source(cfg: StreamConfig, source: &EventSource<'_>, resolvers: ResolverMap) -> Self {
        Self::with_layout(cfg, source.epochs(), source.smoothing_days(), resolvers)
    }

    /// Fallible [`for_source`](Self::for_source): a degenerate config is
    /// an error, not a panic.
    pub fn try_for_source(
        cfg: StreamConfig,
        source: &EventSource<'_>,
        resolvers: ResolverMap,
    ) -> Result<Self, IngestError> {
        Self::try_with_layout(cfg, source.epochs(), source.smoothing_days(), resolvers)
    }

    /// An empty engine with an explicit epoch layout.
    pub fn with_layout(
        cfg: StreamConfig,
        epochs_total: u32,
        smoothing_days: u32,
        resolvers: ResolverMap,
    ) -> Self {
        let router = ShardRouter::new(cfg.shards);
        let shards = (0..cfg.shards)
            .map(|_| ShardState::new(cfg.hll_precision, cfg.heavy_capacity))
            .collect();
        IngestEngine {
            cfg,
            router,
            resolver_map: resolvers,
            shards,
            epochs_total,
            epochs_done: 0,
            smoothing_days,
            poisoned: BTreeSet::new(),
            crashed: false,
            obs: cellobs::Observer::disabled(),
        }
    }

    /// Fallible [`with_layout`](Self::with_layout).
    pub fn try_with_layout(
        cfg: StreamConfig,
        epochs_total: u32,
        smoothing_days: u32,
        resolvers: ResolverMap,
    ) -> Result<Self, IngestError> {
        cfg.validate().map_err(IngestError::BadConfig)?;
        Ok(Self::with_layout(
            cfg,
            epochs_total,
            smoothing_days,
            resolvers,
        ))
    }

    /// Resume from a snapshot. The resolver map is not part of the
    /// snapshot (it is derived state, rebuilt deterministically from the
    /// world); everything else — counters, sketches, progress — is.
    pub fn restore(snapshot: &Snapshot, resolvers: ResolverMap) -> Self {
        IngestEngine {
            cfg: snapshot.config,
            router: ShardRouter::new(snapshot.config.shards),
            resolver_map: resolvers,
            shards: snapshot.shard_states(),
            epochs_total: snapshot.epochs_total,
            epochs_done: snapshot.epochs_done,
            smoothing_days: snapshot.smoothing_days,
            poisoned: BTreeSet::new(),
            crashed: false,
            obs: cellobs::Observer::disabled(),
        }
    }

    /// Fallible [`restore`](Self::restore): the snapshot is validated
    /// first, so an internally-inconsistent one (wrong shard count, bad
    /// config, impossible progress) is rejected instead of restoring an
    /// engine that would panic later.
    pub fn try_restore(snapshot: &Snapshot, resolvers: ResolverMap) -> Result<Self, IngestError> {
        snapshot.validate().map_err(IngestError::SnapshotMismatch)?;
        Ok(Self::restore(snapshot, resolvers))
    }

    /// Attach an observer (builder form). Per-epoch event counters, an
    /// epoch-size histogram, a state-bytes high-water gauge, and recovery
    /// counters report into it. Counters and the histogram are functions
    /// of the stream alone — byte-identical at any shard or thread
    /// count — while the state-bytes gauge legitimately varies with the
    /// shard count (each shard carries fixed sketch budgets).
    pub fn with_observer(mut self, obs: cellobs::Observer) -> Self {
        self.obs = obs;
        self
    }

    /// Attach an observer in place (for engines built by a supervisor).
    pub fn set_observer(&mut self, obs: cellobs::Observer) {
        self.obs = obs;
    }

    /// The engine's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Epochs ingested so far.
    pub fn epochs_done(&self) -> u32 {
        self.epochs_done
    }

    /// Total epochs in the stream's layout.
    pub fn epochs_total(&self) -> u32 {
        self.epochs_total
    }

    /// True once every epoch was ingested.
    pub fn finished(&self) -> bool {
        self.epochs_done >= self.epochs_total
    }

    /// Total events folded across all shards.
    pub fn events_seen(&self) -> u64 {
        self.shards.iter().map(|s| s.events_seen()).sum()
    }

    /// Approximate bytes of live ingest state across all shards.
    pub fn state_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.state_bytes()).sum()
    }

    /// Ingest the next epoch from `source`. Returns the epoch index just
    /// folded.
    ///
    /// # Panics
    /// Panics when the stream is already finished or `source`'s layout
    /// does not match the engine's.
    pub fn ingest_epoch(&mut self, source: &EventSource<'_>) -> u32 {
        match self.try_ingest_epoch(source, None) {
            Ok(epoch) => epoch,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`ingest_epoch`](Self::ingest_epoch), with an optional
    /// fault-injection observer consulted before every event.
    ///
    /// On [`IngestError::ShardPanic`] the epoch still *completes* for the
    /// healthy shards (and counts as done) — only the named shard's state
    /// is poisoned, mirroring a real worker death in a sharded pipeline —
    /// so recovery only has to rebuild that shard. On
    /// [`IngestError::Crashed`] the epoch does **not** count as done and
    /// the whole engine is dead.
    pub fn try_ingest_epoch(
        &mut self,
        source: &EventSource<'_>,
        observer: Option<&dyn IngestObserver>,
    ) -> Result<u32, IngestError> {
        if self.crashed {
            return Err(IngestError::Crashed {
                epoch: self.epochs_done,
            });
        }
        if let Some(&shard) = self.poisoned.iter().next() {
            return Err(IngestError::ShardPanic {
                epoch: self.epochs_done,
                shard,
            });
        }
        if self.finished() {
            return Err(IngestError::Finished {
                epochs: self.epochs_total,
            });
        }
        if source.epochs() != self.epochs_total {
            return Err(IngestError::LayoutMismatch(
                "source epoch layout changed mid-stream".into(),
            ));
        }
        if source.smoothing_days() != self.smoothing_days {
            return Err(IngestError::LayoutMismatch(
                "source smoothing window changed mid-stream".into(),
            ));
        }
        let epoch = self.epochs_done;
        let events = source.try_epoch(epoch).map_err(IngestError::Source)?;
        // Event counters advance for *every* event — including ones a
        // poisoned shard drops — so fault trigger points stay at the same
        // stream offsets regardless of earlier faults.
        let mut epoch_events = 0u64;
        let mut shard_counts = vec![0u64; self.shards.len()];
        let mut killed: Option<u32> = None;
        for ev in events {
            let shard = self.router.shard_of(ev.block());
            let idx = shard as usize;
            let dead = self.poisoned.contains(&shard);
            if !dead {
                match observer
                    .map(|o| o.before_apply(epoch, shard, epoch_events, shard_counts[idx]))
                    .unwrap_or(FoldAction::Continue)
                {
                    FoldAction::Continue => {
                        let resolver = self.resolver_map.resolver_of(ev.block());
                        self.shards[idx].apply(&ev, resolver);
                    }
                    FoldAction::KillShard => {
                        self.poisoned.insert(shard);
                        killed.get_or_insert(shard);
                    }
                    FoldAction::CrashProcess => {
                        self.crashed = true;
                        return Err(IngestError::Crashed { epoch });
                    }
                }
            }
            epoch_events += 1;
            shard_counts[idx] += 1;
        }
        self.epochs_done += 1;
        // The epoch counts as done even when a shard died (healthy shards
        // finished it), so report it either way. `epoch_events` counts
        // every event — including ones a poisoned shard dropped — so the
        // counters are a function of the stream alone.
        if self.obs.is_enabled() {
            self.obs.counter("stream.events").add(epoch_events);
            self.obs.counter("stream.epochs").inc();
            self.obs
                .histogram("stream.epoch.events")
                .record(epoch_events);
            self.obs
                .gauge("stream.state_bytes.peak")
                .set_max(self.state_bytes() as u64);
        }
        match killed {
            Some(shard) => Err(IngestError::ShardPanic { epoch, shard }),
            None => Ok(epoch),
        }
    }

    /// Rebuild one shard after a [`IngestError::ShardPanic`]: reset it
    /// from `base` (or to empty when `base` is `None`, e.g. every
    /// retained checkpoint was corrupt) and replay only that shard's
    /// slice of the missing epochs from `source`. Returns the number of
    /// epochs replayed.
    ///
    /// Bit-exact by construction: the router assigns each block to
    /// exactly one shard and per-shard fold order equals stream order, so
    /// replaying the shard's events in stream order rebuilds the same
    /// state the uninterrupted run would hold. The replay reads through
    /// [`EventSource::epoch`], not the gated
    /// [`try_epoch`](EventSource::try_epoch) — recovery must not be
    /// re-failed by the same injected source fault.
    pub fn recover_shard(
        &mut self,
        shard: u32,
        base: Option<&Snapshot>,
        source: &EventSource<'_>,
    ) -> Result<u32, IngestError> {
        if self.crashed {
            return Err(IngestError::Crashed {
                epoch: self.epochs_done,
            });
        }
        if shard >= self.cfg.shards {
            return Err(IngestError::BadConfig(format!(
                "shard {shard} out of range (engine has {})",
                self.cfg.shards
            )));
        }
        let idx = shard as usize;
        let start = match base {
            Some(snap) => {
                snap.validate().map_err(IngestError::SnapshotMismatch)?;
                if snap.config != self.cfg
                    || snap.epochs_total != self.epochs_total
                    || snap.smoothing_days != self.smoothing_days
                {
                    return Err(IngestError::SnapshotMismatch(
                        "checkpoint layout differs from the running engine".into(),
                    ));
                }
                if snap.epochs_done > self.epochs_done {
                    return Err(IngestError::SnapshotMismatch(
                        "checkpoint is ahead of the engine".into(),
                    ));
                }
                self.shards[idx] = snap.shard_state(idx);
                snap.epochs_done
            }
            None => {
                self.shards[idx] = ShardState::new(self.cfg.hll_precision, self.cfg.heavy_capacity);
                0
            }
        };
        for epoch in start..self.epochs_done {
            for ev in source.epoch(epoch) {
                if self.router.shard_of(ev.block()) == shard {
                    let resolver = self.resolver_map.resolver_of(ev.block());
                    self.shards[idx].apply(&ev, resolver);
                }
            }
        }
        self.poisoned.remove(&shard);
        if self.obs.is_enabled() {
            self.obs.counter("stream.recovery.shard_rebuilds").inc();
            self.obs
                .counter("stream.recovery.replayed_epochs")
                .add((self.epochs_done - start) as u64);
        }
        Ok(self.epochs_done - start)
    }

    /// Shards currently poisoned by an injected panic, ascending.
    pub fn poisoned_shards(&self) -> Vec<u32> {
        self.poisoned.iter().copied().collect()
    }

    /// True after a simulated process crash: the engine must be dropped
    /// and restored from a checkpoint.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Ingest every remaining epoch.
    pub fn run_to_end(&mut self, source: &EventSource<'_>) {
        while !self.finished() {
            self.ingest_epoch(source);
        }
    }

    /// Checkpoint the engine's complete state at the current epoch
    /// boundary. Serialization is canonical: the same engine state always
    /// produces byte-identical JSON.
    ///
    /// # Panics
    /// Panics when the engine is poisoned or crashed — checkpointing
    /// stale shard state would corrupt the recovery chain. Recover (or
    /// restore) first.
    pub fn snapshot(&self) -> Snapshot {
        assert!(
            self.poisoned.is_empty() && !self.crashed,
            "cannot checkpoint a poisoned engine (recover first)"
        );
        Snapshot::capture(
            self.cfg,
            self.epochs_total,
            self.epochs_done,
            self.smoothing_days,
            &self.shards,
        )
    }

    /// Merge all shards down to the raw per-block counters accumulated
    /// so far, sorted by block, without any dataset-level normalization.
    ///
    /// This is the feed for the incremental classifier (`celldelta`):
    /// unlike [`IngestEngine::finalize`], which routes demand through
    /// [`cdnsim::DemandDataset::from_raw`] (a *global* renormalization
    /// that changes every block's `du` whenever any block changes), the
    /// raw counters of an untouched block are bit-identical across
    /// epochs — exactly the stability the per-AS memoization keys on.
    /// Demand smoothing (`acc / smoothing_days`) is still applied; it is
    /// a per-block operation. When a block appears in both the beacon
    /// and demand accumulators the demand-side ASN wins, matching
    /// `cellspot::BlockIndex::build`'s lenient join.
    pub fn raw_counters(&self) -> Vec<RawBlockCounters> {
        let days = self.smoothing_days.max(1) as f64;
        // Blocks are partitioned across shards, so concatenating the
        // per-shard (sorted) maps yields no duplicates; one sort puts
        // the merged view in global block order.
        let mut blocks: std::collections::BTreeMap<BlockId, RawBlockCounters> =
            std::collections::BTreeMap::new();
        for shard in &self.shards {
            for (&block, a) in &shard.beacons {
                blocks.insert(
                    block,
                    RawBlockCounters {
                        block,
                        asn: a.asn,
                        netinfo_hits: a.netinfo_hits,
                        cellular_hits: a.cellular_hits,
                        du: 0.0,
                    },
                );
            }
        }
        for shard in &self.shards {
            for (&block, a) in &shard.demand {
                let entry = blocks.entry(block).or_insert(RawBlockCounters {
                    block,
                    asn: a.asn,
                    netinfo_hits: 0,
                    cellular_hits: 0,
                    du: 0.0,
                });
                entry.asn = a.asn;
                entry.du = a.acc / days;
            }
        }
        blocks.into_values().collect()
    }

    /// Merge all shards down to the datasets and sketch report.
    ///
    /// Counter outputs are exact: after the final epoch they equal
    /// [`cdnsim::generate_beacons`]/[`cdnsim::generate_demand`] bit for
    /// bit, at any shard count. Sketch outputs carry their documented
    /// error bounds instead.
    pub fn finalize(&self) -> StreamOutputs {
        // Blocks are partitioned across shards, so concatenation has no
        // duplicate blocks; the dataset constructors sort.
        let beacon_records: Vec<BeaconRecord> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.beacons.iter().map(|(&block, a)| BeaconRecord {
                    block,
                    asn: a.asn,
                    hits_total: a.hits_total,
                    netinfo_hits: a.netinfo_hits,
                    cellular_hits: a.cellular_hits,
                    wifi_hits: a.wifi_hits,
                    other_hits: a.other_hits,
                })
            })
            .collect();
        let days = self.smoothing_days.max(1) as f64;
        let demand_records: Vec<DemandRecord> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.demand.iter().map(move |(&block, a)| DemandRecord {
                    block,
                    asn: a.asn,
                    du: a.acc / days,
                })
            })
            .collect();

        // Register-max merging makes the per-resolver sketches identical
        // to a single-shard run's.
        let mut resolvers: std::collections::BTreeMap<u32, HyperLogLog> =
            std::collections::BTreeMap::new();
        let mut heavy = SpaceSaving::new(self.cfg.heavy_capacity);
        for shard in &self.shards {
            for (&id, hll) in &shard.resolvers {
                resolvers
                    .entry(id)
                    .and_modify(|m| m.merge(hll))
                    .or_insert_with(|| hll.clone());
            }
            heavy.merge(&shard.heavy);
        }
        let resolver_clients = resolvers
            .iter()
            .map(|(&resolver, hll)| ResolverClients {
                resolver,
                estimated_clients: hll.estimate(),
                std_error: hll.relative_error(),
            })
            .collect();
        let sketches = SketchReport {
            resolver_clients,
            heavy_error_bound: heavy.error_bound(),
            total_demand_weight: heavy.total_weight(),
            heavy_hitters: heavy.top(self.cfg.heavy_capacity),
        };

        StreamOutputs {
            beacons: BeaconDataset::from_records(BEACON_PERIOD, beacon_records),
            demand: DemandDataset::from_raw(DEMAND_PERIOD, demand_records),
            sketches,
        }
    }
}
