//! Deterministic fault injection for the streaming ingest path.
//!
//! A [`FaultPlan`] is a serializable list of faults pinned to exact
//! stream offsets — "crash the process after 500 events of epoch 3",
//! "flip two bits in the epoch-4 checkpoint" — so a chaos run is fully
//! reproducible from `(world seed, fault plan)` alone: no wall clocks,
//! no OS scheduling, no randomness outside the plan's own seed.
//!
//! One [`FaultInjector`] drives every seam at once. It implements
//! [`cdnsim::EpochGate`] (source stalls/failures, consulted by
//! [`EventSource::try_epoch`]) and [`IngestObserver`] (shard kills and
//! process crashes, consulted before every fold), and tampers with
//! checkpoint files after they are written ([`FaultInjector::tamper_checkpoint`]).
//! Each fault fires exactly once (stalls fire their configured count),
//! so recovery replays cannot re-trigger the fault that necessitated
//! them.
//!
//! [`run_chaos`] is the supervisor loop the `stream --fault-plan` CLI
//! and the chaos test suite share: ingest epochs, checkpoint each
//! boundary through a [`CheckpointStore`], and on every injected
//! failure do what a production operator would — retry stalled epochs,
//! rebuild killed shards from the last good checkpoint plus a replay of
//! the missing epoch slice, restart crashed processes from disk. The
//! chaos suite asserts the result is byte-identical to a fault-free run.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::{Mutex, MutexGuard, PoisonError};

use serde::{Deserialize, Serialize};

use cdnsim::{EpochGate, EventSource, SourceError, SourceErrorKind};

use crate::engine::{
    FoldAction, IngestEngine, IngestError, IngestObserver, ResolverMap, StreamConfig,
};
use crate::hll::mix64;
use crate::integrity::{CheckpointStore, RecoveryOutcome};

/// One injected fault, pinned to a deterministic stream offset.
///
/// Event counts are *within-epoch* offsets counted before the triggering
/// event, so `after_events: 0` fires before the first event (an epoch
/// boundary) and `after_events: n` fires once `n` events were counted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// Kill the whole process mid-epoch: the epoch does not complete and
    /// a restart must restore from the last good checkpoint.
    Crash {
        /// Epoch the crash hits.
        epoch: u32,
        /// Fire once this many events of the epoch were processed
        /// (across all shards).
        after_events: u64,
    },
    /// Kill one shard's worker mid-epoch: the other shards finish the
    /// epoch and only this shard must be rebuilt.
    ShardKill {
        /// Epoch the kill hits.
        epoch: u32,
        /// The shard to poison.
        shard: u32,
        /// Fire once this shard folded this many events of the epoch.
        after_events: u64,
    },
    /// Truncate the checkpoint file written after `epoch` epochs
    /// completed, simulating a torn write the atomic path cannot cause
    /// but a dying disk can.
    TruncateCheckpoint {
        /// `epochs_done` of the checkpoint file to tamper with.
        epoch: u32,
        /// Bytes to keep from the front of the file.
        keep_bytes: u64,
    },
    /// Flip bits in the checkpoint file written after `epoch` epochs
    /// completed. Offsets derive from the plan seed, so the same plan
    /// always corrupts the same bytes.
    FlipCheckpointBytes {
        /// `epochs_done` of the checkpoint file to tamper with.
        epoch: u32,
        /// Number of single-bit flips to apply.
        flips: u32,
    },
    /// Stall the event source at an epoch: serving it fails transiently
    /// this many times, then succeeds.
    SourceStall {
        /// Epoch the stall hits.
        epoch: u32,
        /// Failures before the source recovers.
        times: u32,
    },
    /// Fail the event source at an epoch permanently: the run cannot
    /// finish and must surface a clean error.
    SourceFail {
        /// Epoch the failure hits.
        epoch: u32,
    },
}

/// A reproducible chaos scenario: a seed (drives bit-flip offsets) plus
/// the faults to inject. Serialized as JSON for the `stream
/// --fault-plan` CLI flag.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for fault-internal randomness (checkpoint bit-flip offsets).
    pub seed: u64,
    /// The faults, in any order; each is matched by its own trigger.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Pretty JSON encoding (newline-terminated).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("fault plan serialization is total");
        s.push('\n');
        s
    }

    /// Parse a plan from JSON.
    pub fn from_json(json: &str) -> io::Result<Self> {
        serde_json::from_str(json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Load a plan from a JSON file.
    pub fn read_from(path: &Path) -> io::Result<Self> {
        Self::from_json(&fs::read_to_string(path)?)
    }

    /// Write the plan to a JSON file.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.to_json())
    }
}

/// Per-fault progress: how many times each fault has fired.
struct InjectorState {
    fired: Vec<u32>,
    log: Vec<String>,
}

/// Executes a [`FaultPlan`] across every injection seam. Interior
/// mutability lets one `Arc<FaultInjector>` serve as both the source's
/// [`EpochGate`] and the engine's [`IngestObserver`].
pub struct FaultInjector {
    plan: FaultPlan,
    state: Mutex<InjectorState>,
}

impl FaultInjector {
    /// An injector that will execute `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let fired = vec![0u32; plan.faults.len()];
        FaultInjector {
            plan,
            state: Mutex::new(InjectorState {
                fired,
                log: Vec::new(),
            }),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Lock the injector state, recovering from a poisoned mutex. A
    /// shard panicking while the injector is held is exactly the kind
    /// of fault this module *simulates*, and the state behind the lock
    /// (fire counts plus a log) is updated one field at a time with no
    /// cross-field invariant a mid-update panic could break — so poison
    /// here carries no information and recovery is always safe. The
    /// previous `.expect("injector mutex poisoned")` turned a simulated
    /// shard death into a real supervisor panic.
    fn state(&self) -> MutexGuard<'_, InjectorState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Drain the injection log (one line per fault fired since the last
    /// drain).
    pub fn drain_log(&self) -> Vec<String> {
        std::mem::take(&mut self.state().log)
    }

    /// Apply any pending checkpoint-tampering faults to the file at
    /// `path` (the checkpoint written after `epochs_done` epochs).
    /// Returns the number of faults applied. Tampering writes directly —
    /// not atomically — because it *simulates* torn writes and bit rot.
    pub fn tamper_checkpoint(&self, epochs_done: u32, path: &Path) -> io::Result<u32> {
        let mut st = self.state();
        let mut applied = 0u32;
        for (i, fault) in self.plan.faults.iter().enumerate() {
            if st.fired[i] > 0 {
                continue;
            }
            match *fault {
                Fault::TruncateCheckpoint { epoch, keep_bytes } if epoch == epochs_done => {
                    let mut bytes = fs::read(path)?;
                    bytes.truncate(keep_bytes.min(bytes.len() as u64) as usize);
                    fs::write(path, &bytes)?;
                    st.fired[i] = 1;
                    st.log.push(format!(
                        "truncated checkpoint {} to {} bytes",
                        path.display(),
                        keep_bytes
                    ));
                    applied += 1;
                }
                Fault::FlipCheckpointBytes { epoch, flips } if epoch == epochs_done => {
                    let mut bytes = fs::read(path)?;
                    if !bytes.is_empty() {
                        for k in 0..flips {
                            let h = mix64(self.plan.seed ^ ((epoch as u64) << 32) ^ (k as u64));
                            let off = (h % bytes.len() as u64) as usize;
                            bytes[off] ^= 1u8 << ((h >> 61) as u32 % 8);
                        }
                        fs::write(path, &bytes)?;
                    }
                    st.fired[i] = 1;
                    st.log.push(format!(
                        "flipped {} bit(s) in checkpoint {}",
                        flips,
                        path.display()
                    ));
                    applied += 1;
                }
                _ => {}
            }
        }
        Ok(applied)
    }
}

impl EpochGate for FaultInjector {
    fn check(&self, epoch: u32) -> Result<(), SourceError> {
        let mut st = self.state();
        for (i, fault) in self.plan.faults.iter().enumerate() {
            match *fault {
                Fault::SourceStall { epoch: e, times } if e == epoch && st.fired[i] < times => {
                    st.fired[i] += 1;
                    let left = times - st.fired[i];
                    st.log
                        .push(format!("source stalled at epoch {epoch} ({left} left)"));
                    return Err(SourceError {
                        epoch,
                        kind: SourceErrorKind::Stall,
                    });
                }
                Fault::SourceFail { epoch: e } if e == epoch => {
                    if st.fired[i] == 0 {
                        st.fired[i] = 1;
                        st.log.push(format!("source failed at epoch {epoch}"));
                    }
                    return Err(SourceError {
                        epoch,
                        kind: SourceErrorKind::Failed,
                    });
                }
                _ => {}
            }
        }
        Ok(())
    }
}

impl IngestObserver for FaultInjector {
    fn before_apply(
        &self,
        epoch: u32,
        shard: u32,
        epoch_events: u64,
        shard_events: u64,
    ) -> FoldAction {
        let mut st = self.state();
        for (i, fault) in self.plan.faults.iter().enumerate() {
            if st.fired[i] > 0 {
                continue;
            }
            match *fault {
                Fault::Crash {
                    epoch: e,
                    after_events,
                } if e == epoch && epoch_events >= after_events => {
                    st.fired[i] = 1;
                    st.log.push(format!(
                        "crashed process at epoch {epoch} after {epoch_events} events"
                    ));
                    return FoldAction::CrashProcess;
                }
                Fault::ShardKill {
                    epoch: e,
                    shard: s,
                    after_events,
                } if e == epoch && s == shard && shard_events >= after_events => {
                    st.fired[i] = 1;
                    st.log.push(format!(
                        "killed shard {shard} at epoch {epoch} after {shard_events} shard events"
                    ));
                    return FoldAction::KillShard;
                }
                _ => {}
            }
        }
        FoldAction::Continue
    }
}

/// Counters a chaos run reports alongside its outputs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Simulated process crashes survived.
    pub crashes: u32,
    /// Process restarts performed (equals `crashes` unless restarts ran
    /// out).
    pub restarts: u32,
    /// Shards rebuilt after an injected panic.
    pub shard_recoveries: u32,
    /// Total epochs replayed across all shard recoveries.
    pub replayed_epochs: u32,
    /// Transient source stalls retried.
    pub stalls: u32,
    /// Checkpoint files rejected by integrity or schema verification
    /// (counted per recovery scan, so a corrupt file left on disk counts
    /// each time it is skipped over).
    pub checkpoints_rejected: u32,
    /// Human-readable event log, in order.
    pub log: Vec<String>,
}

/// Why a chaos run could not complete.
#[derive(Debug)]
pub enum ChaosError {
    /// The engine reported an unrecoverable ingest error (e.g. a
    /// permanent source failure).
    Ingest(IngestError),
    /// Checkpoint I/O failed for real (not an injected corruption).
    Io(io::Error),
    /// The run crashed more times than the restart budget allows.
    RestartsExhausted {
        /// The budget that was exceeded.
        limit: u32,
    },
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosError::Ingest(e) => write!(f, "ingest failed: {e}"),
            ChaosError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            ChaosError::RestartsExhausted { limit } => {
                write!(f, "gave up after {limit} restarts")
            }
        }
    }
}

impl std::error::Error for ChaosError {}

impl From<io::Error> for ChaosError {
    fn from(e: io::Error) -> Self {
        ChaosError::Io(e)
    }
}

impl From<IngestError> for ChaosError {
    fn from(e: IngestError) -> Self {
        ChaosError::Ingest(e)
    }
}

fn note_rejected(report: &mut ChaosReport, outcome: &RecoveryOutcome) {
    for (path, why) in &outcome.skipped {
        report.checkpoints_rejected += 1;
        report
            .log
            .push(format!("rejected checkpoint {}: {why}", path.display()));
    }
}

/// Run a full stream under fault injection, surviving everything the
/// plan throws at it (except permanent source failures and an exhausted
/// restart budget).
///
/// The supervisor loop mirrors a production deployment:
///
/// * each completed epoch is checkpointed through `store` (then handed
///   to the injector, which may tamper with the file);
/// * a transient source stall retries the same epoch;
/// * a shard panic rebuilds the dead shard from the newest checkpoint
///   that verifies (or from scratch when none does) plus a replay of the
///   missing epochs, then continues — the epoch itself already completed
///   for the healthy shards;
/// * a process crash drops the engine and restarts from the newest good
///   checkpoint, at most `max_restarts` times.
///
/// Pass a `source` gated on the same injector
/// ([`EventSource::with_gate`]) so source faults actually fire. The
/// returned engine finished every epoch; the chaos test suite asserts
/// its state is byte-identical to a fault-free run's.
pub fn run_chaos(
    source: &EventSource<'_>,
    cfg: StreamConfig,
    resolvers: &ResolverMap,
    store: &CheckpointStore,
    injector: &FaultInjector,
    max_restarts: u32,
) -> Result<(IngestEngine, ChaosReport), ChaosError> {
    run_chaos_observed(
        source,
        cfg,
        resolvers,
        store,
        injector,
        max_restarts,
        &cellobs::Observer::disabled(),
    )
}

/// [`run_chaos`] with observability: every engine the supervisor builds
/// (initial, restarted) reports into `obs`, and the final
/// [`ChaosReport`]'s fault-trip totals land in `stream.faults.*`
/// counters. Trip counters are a function of `(stream, fault plan)`
/// alone, so they stay byte-identical across thread counts.
#[allow(clippy::too_many_arguments)]
pub fn run_chaos_observed(
    source: &EventSource<'_>,
    cfg: StreamConfig,
    resolvers: &ResolverMap,
    store: &CheckpointStore,
    injector: &FaultInjector,
    max_restarts: u32,
    obs: &cellobs::Observer,
) -> Result<(IngestEngine, ChaosReport), ChaosError> {
    let result = run_chaos_inner(source, cfg, resolvers, store, injector, max_restarts, obs);
    if let (Ok((_, report)), true) = (&result, obs.is_enabled()) {
        obs.counter("stream.faults.crashes")
            .add(report.crashes as u64);
        obs.counter("stream.faults.restarts")
            .add(report.restarts as u64);
        obs.counter("stream.faults.stalls")
            .add(report.stalls as u64);
        obs.counter("stream.faults.checkpoints_rejected")
            .add(report.checkpoints_rejected as u64);
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn run_chaos_inner(
    source: &EventSource<'_>,
    cfg: StreamConfig,
    resolvers: &ResolverMap,
    store: &CheckpointStore,
    injector: &FaultInjector,
    max_restarts: u32,
    obs: &cellobs::Observer,
) -> Result<(IngestEngine, ChaosReport), ChaosError> {
    let mut report = ChaosReport::default();
    'restart: loop {
        let recovered = store.load_latest_good()?;
        note_rejected(&mut report, &recovered);
        let mut engine = match &recovered.snapshot {
            Some((snap, path)) => {
                report.log.push(format!("restored from {}", path.display()));
                IngestEngine::try_restore(snap, resolvers.clone())?
            }
            None => IngestEngine::try_for_source(cfg, source, resolvers.clone())?,
        };
        engine.set_observer(obs.clone());
        while !engine.finished() {
            match engine.try_ingest_epoch(source, Some(injector)) {
                Ok(_) => {}
                Err(IngestError::Source(e)) if e.kind == SourceErrorKind::Stall => {
                    report.stalls += 1;
                    report.log.extend(injector.drain_log());
                    continue;
                }
                Err(IngestError::ShardPanic { .. }) => {
                    report.log.extend(injector.drain_log());
                    // Several shards can die in one epoch; recover all of
                    // them before checkpointing (a checkpoint of poisoned
                    // state would corrupt the recovery chain).
                    while let Some(shard) = engine.poisoned_shards().first().copied() {
                        let rec = store.load_latest_good()?;
                        note_rejected(&mut report, &rec);
                        let base = rec.snapshot.as_ref().map(|(s, _)| s);
                        let replayed = engine.recover_shard(shard, base, source)?;
                        report.shard_recoveries += 1;
                        report.replayed_epochs += replayed;
                        report.log.push(format!(
                            "recovered shard {shard} (replayed {replayed} epoch(s))"
                        ));
                    }
                }
                Err(IngestError::Crashed { epoch }) => {
                    report.crashes += 1;
                    report.restarts += 1;
                    report.log.extend(injector.drain_log());
                    if report.restarts > max_restarts {
                        return Err(ChaosError::RestartsExhausted {
                            limit: max_restarts,
                        });
                    }
                    report
                        .log
                        .push(format!("restarting after crash in epoch {epoch}"));
                    continue 'restart;
                }
                Err(e) => return Err(ChaosError::Ingest(e)),
            }
            let snap = engine.snapshot();
            let path = store.save(&snap)?;
            injector.tamper_checkpoint(snap.epochs_done, &path)?;
            report.log.extend(injector.drain_log());
        }
        report.log.extend(injector.drain_log());
        return Ok((engine, report));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = FaultPlan {
            seed: 42,
            faults: vec![
                Fault::Crash {
                    epoch: 3,
                    after_events: 500,
                },
                Fault::ShardKill {
                    epoch: 1,
                    shard: 0,
                    after_events: 50,
                },
                Fault::TruncateCheckpoint {
                    epoch: 2,
                    keep_bytes: 100,
                },
                Fault::FlipCheckpointBytes { epoch: 4, flips: 2 },
                Fault::SourceStall { epoch: 0, times: 3 },
                Fault::SourceFail { epoch: 5 },
            ],
        };
        let json = plan.to_json();
        assert_eq!(FaultPlan::from_json(&json).expect("parses"), plan);
    }

    #[test]
    fn crash_fires_once_at_its_offset() {
        let injector = FaultInjector::new(FaultPlan {
            seed: 1,
            faults: vec![Fault::Crash {
                epoch: 2,
                after_events: 10,
            }],
        });
        // Wrong epoch, and offsets before the trigger: no fire.
        assert_eq!(injector.before_apply(1, 0, 10, 10), FoldAction::Continue);
        assert_eq!(injector.before_apply(2, 0, 9, 9), FoldAction::Continue);
        // At the trigger: fires.
        assert_eq!(injector.before_apply(2, 0, 10, 3), FoldAction::CrashProcess);
        // Never again.
        assert_eq!(injector.before_apply(2, 0, 11, 4), FoldAction::Continue);
        assert_eq!(injector.drain_log().len(), 1);
        assert!(injector.drain_log().is_empty(), "drain empties the log");
    }

    #[test]
    fn shard_kill_matches_shard_and_offset() {
        let injector = FaultInjector::new(FaultPlan {
            seed: 1,
            faults: vec![Fault::ShardKill {
                epoch: 0,
                shard: 2,
                after_events: 5,
            }],
        });
        assert_eq!(injector.before_apply(0, 1, 100, 5), FoldAction::Continue);
        assert_eq!(injector.before_apply(0, 2, 100, 4), FoldAction::Continue);
        assert_eq!(injector.before_apply(0, 2, 100, 5), FoldAction::KillShard);
        assert_eq!(injector.before_apply(0, 2, 100, 6), FoldAction::Continue);
    }

    #[test]
    fn stall_fires_its_count_then_clears() {
        let injector = FaultInjector::new(FaultPlan {
            seed: 1,
            faults: vec![Fault::SourceStall { epoch: 1, times: 2 }],
        });
        assert!(injector.check(0).is_ok());
        assert_eq!(injector.check(1).unwrap_err().kind, SourceErrorKind::Stall);
        assert_eq!(injector.check(1).unwrap_err().kind, SourceErrorKind::Stall);
        assert!(injector.check(1).is_ok(), "stall clears after its count");
    }

    #[test]
    fn tampering_is_deterministic_per_seed() {
        let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("faultsim_tamper");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("ckpt-ep000002.json");
        let plan = FaultPlan {
            seed: 7,
            faults: vec![Fault::FlipCheckpointBytes { epoch: 2, flips: 2 }],
        };
        let original = "0123456789abcdef0123456789abcdef\n";

        fs::write(&path, original).expect("write");
        let a = FaultInjector::new(plan.clone());
        assert_eq!(a.tamper_checkpoint(2, &path).expect("tamper"), 1);
        let first = fs::read(&path).expect("read");

        fs::write(&path, original).expect("rewrite");
        let b = FaultInjector::new(plan);
        assert_eq!(b.tamper_checkpoint(2, &path).expect("tamper"), 1);
        let second = fs::read(&path).expect("read");

        assert_ne!(first.as_slice(), original.as_bytes(), "bytes changed");
        assert_eq!(first, second, "same seed, same corruption");
        // Wrong epoch: untouched and unfired.
        fs::write(&path, original).expect("rewrite");
        let c = FaultInjector::new(FaultPlan {
            seed: 7,
            faults: vec![Fault::TruncateCheckpoint {
                epoch: 3,
                keep_bytes: 4,
            }],
        });
        assert_eq!(c.tamper_checkpoint(2, &path).expect("tamper"), 0);
        assert_eq!(fs::read(&path).expect("read"), original.as_bytes());
        let _ = fs::remove_dir_all(&dir);
    }

    /// Panic a thread while it holds the injector lock, poisoning the
    /// mutex the way a shard dying inside the critical section would.
    fn poison(injector: &FaultInjector) {
        let panicked = std::thread::scope(|s| {
            s.spawn(|| {
                let _held = injector.state.lock().expect("not yet poisoned");
                panic!("simulated shard panic while holding the injector");
            })
            .join()
        });
        assert!(panicked.is_err(), "the holder must have panicked");
        assert!(injector.state.is_poisoned(), "the mutex must be poisoned");
    }

    #[test]
    fn every_seam_survives_a_poisoned_injector() {
        let injector = FaultInjector::new(FaultPlan {
            seed: 9,
            faults: vec![
                Fault::Crash {
                    epoch: 0,
                    after_events: 0,
                },
                Fault::SourceStall { epoch: 2, times: 1 },
                Fault::TruncateCheckpoint {
                    epoch: 5,
                    keep_bytes: 2,
                },
            ],
        });
        poison(&injector);
        // Every entry point still works — the poison is recovered, not
        // re-thrown into the supervisor (which would turn a *simulated*
        // fault into a real panic).
        assert_eq!(injector.before_apply(0, 0, 0, 0), FoldAction::CrashProcess);
        assert_eq!(injector.check(2).unwrap_err().kind, SourceErrorKind::Stall);
        assert!(injector.check(2).is_ok(), "stall cleared after its count");
        let log = injector.drain_log();
        assert!(log.iter().any(|l| l.contains("crashed process")));
        assert!(log.iter().any(|l| l.contains("stalled")));
        let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("faultsim_poison");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("ckpt-ep000005.json");
        fs::write(&path, "0123456789\n").expect("write");
        assert_eq!(injector.tamper_checkpoint(5, &path).expect("tamper"), 1);
        assert_eq!(fs::read(&path).expect("read"), b"01");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_run_completes_with_a_poisoned_injector() {
        use std::sync::Arc;

        use cdnsim::{CdnConfig, EventSource};

        let world = worldgen::World::generate(worldgen::WorldConfig::mini());
        let dns = dnssim::generate_dns(&world);
        let resolvers = crate::ResolverMap::from_dns(&dns);
        let cfg = StreamConfig {
            shards: 3,
            ..Default::default()
        };
        let epochs = 3;

        // Fault-free truth.
        let source = EventSource::new(&world, CdnConfig::default(), epochs);
        let mut reference = IngestEngine::for_source(cfg, &source, resolvers.clone());
        reference.run_to_end(&source);
        let want = reference.snapshot().to_json();

        // A chaos run whose injector was poisoned by a holder's panic
        // *before* the supervisor ever touches it: the kill still fires,
        // the shard is rebuilt, and the result is byte-identical.
        let injector = Arc::new(FaultInjector::new(FaultPlan {
            seed: 11,
            faults: vec![Fault::ShardKill {
                epoch: 1,
                shard: 0,
                after_events: 5,
            }],
        }));
        poison(&injector);
        let gate: Arc<dyn EpochGate> = injector.clone();
        let source = EventSource::new(&world, CdnConfig::default(), epochs).with_gate(gate);
        let dir =
            std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("faultsim_poison_chaos");
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir, 3);
        let (engine, report) =
            run_chaos(&source, cfg, &resolvers, &store, &injector, 4).expect("chaos run recovers");
        assert_eq!(report.shard_recoveries, 1, "the kill fired and recovered");
        assert_eq!(engine.snapshot().to_json(), want, "byte-identical result");
        let _ = fs::remove_dir_all(&dir);
    }
}
