//! Space-Saving weighted heavy-hitter sketch.
//!
//! Metwally et al.'s algorithm over weighted updates, used to track which
//! blocks concentrate demand (the paper's §5.3 observation that a handful
//! of carrier-grade-NAT front blocks carry outsized demand). State is
//! bounded by `capacity` counters. Guarantees, with `W` the total weight
//! offered:
//!
//! * every tracked key's estimate **over**-counts: `true ≤ estimate`;
//! * the slack is bounded per key: `estimate − error ≤ true`, where
//!   `error` is the counter inherited at eviction time;
//! * any key whose true weight exceeds `W / capacity` is tracked.
//!
//! Sketches merge by replaying one sketch's counters into the other with
//! their errors carried along, so the per-key bounds survive shard
//! merging (the estimates themselves may differ slightly between shard
//! counts — unlike HyperLogLog, Space-Saving merging is not exact — which
//! is why the equivalence test checks bounds, not bit-equality, here).

use netaddr::BlockId;
use serde::{Deserialize, Serialize};

/// One tracked counter.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HeavyHitter {
    /// The tracked block.
    pub block: BlockId,
    /// Estimated total weight (never below the true weight).
    pub weight: f64,
    /// Maximum over-count: `weight − error ≤ true weight ≤ weight`.
    pub error: f64,
}

/// Bounded-size weighted heavy-hitter tracker.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpaceSaving {
    capacity: usize,
    /// Counters in insertion order — kept stable so serialized snapshots
    /// restore to a sketch with identical future eviction behavior.
    entries: Vec<HeavyHitter>,
    total_weight: f64,
}

impl SpaceSaving {
    /// An empty sketch tracking at most `capacity` keys.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "space-saving needs at least one counter");
        SpaceSaving {
            capacity,
            entries: Vec::new(),
            total_weight: 0.0,
        }
    }

    /// Counter budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total weight offered so far (exact, not estimated).
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Number of live counters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was offered yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Worst-case over-count of any reported estimate: the smallest live
    /// counter (≤ `total_weight / capacity` once the sketch is full).
    pub fn error_bound(&self) -> f64 {
        if self.entries.len() < self.capacity {
            0.0
        } else {
            self.entries
                .iter()
                .map(|e| e.weight)
                .fold(f64::INFINITY, f64::min)
        }
    }

    /// Offer `weight` for `block`.
    pub fn offer(&mut self, block: BlockId, weight: f64) {
        self.offer_with_error(block, weight, 0.0);
    }

    /// Offer a pre-aggregated counter (used by [`merge`](Self::merge)):
    /// `weight` with an existing over-count of `error`.
    fn offer_with_error(&mut self, block: BlockId, weight: f64, error: f64) {
        self.total_weight += weight;
        if let Some(e) = self.entries.iter_mut().find(|e| e.block == block) {
            e.weight += weight;
            e.error += error;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(HeavyHitter {
                block,
                weight,
                error,
            });
            return;
        }
        // Evict the smallest counter (first among ties, so eviction is
        // deterministic) and inherit its estimate as the new key's error.
        let victim = self
            .entries
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.weight.total_cmp(&b.weight))
            .map(|(i, _)| i)
            .expect("capacity > 0");
        let inherited = self.entries[victim].weight;
        self.entries[victim] = HeavyHitter {
            block,
            weight: inherited + weight,
            error: inherited + error,
        };
    }

    /// Fold another sketch into this one. Per-key bounds
    /// (`estimate − error ≤ true ≤ estimate`) and the
    /// `W / capacity` tracking guarantee hold on the result for the
    /// combined stream.
    pub fn merge(&mut self, other: &SpaceSaving) {
        for e in &other.entries {
            self.offer_with_error(e.block, e.weight, e.error);
        }
    }

    /// The `n` heaviest counters, sorted by estimate descending (block id
    /// breaks ties deterministically).
    pub fn top(&self, n: usize) -> Vec<HeavyHitter> {
        let mut out = self.entries.clone();
        out.sort_by(|a, b| b.weight.total_cmp(&a.weight).then(a.block.cmp(&b.block)));
        out.truncate(n);
        out
    }

    /// All live counters in internal order (for snapshots).
    pub fn entries(&self) -> &[HeavyHitter] {
        &self.entries
    }

    /// Approximate bytes of counter state.
    pub fn state_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<HeavyHitter>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netaddr::Block24;

    fn b(i: u32) -> BlockId {
        BlockId::V4(Block24::from_index(i))
    }

    #[test]
    fn exact_below_capacity() {
        let mut s = SpaceSaving::new(8);
        for i in 0..5u32 {
            s.offer(b(i), (i + 1) as f64);
            s.offer(b(i), (i + 1) as f64);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.error_bound(), 0.0);
        let top = s.top(5);
        assert_eq!(top[0].block, b(4));
        assert_eq!(top[0].weight, 10.0);
        assert_eq!(top[0].error, 0.0);
    }

    #[test]
    fn heavy_keys_survive_and_bounds_hold() {
        // 4 heavy keys + 100 light ones through a 10-counter sketch.
        let mut s = SpaceSaving::new(10);
        let mut truth = std::collections::HashMap::new();
        for round in 0..50u32 {
            for i in 0..4u32 {
                let w = 100.0;
                s.offer(b(i), w);
                *truth.entry(b(i)).or_insert(0.0) += w;
            }
            for i in 0..100u32 {
                let w = 1.0;
                s.offer(b(1000 + (round * 100 + i) % 100), w);
                *truth
                    .entry(b(1000 + (round * 100 + i) % 100))
                    .or_insert(0.0) += w;
            }
        }
        let total: f64 = truth.values().sum();
        assert!((s.total_weight() - total).abs() < 1e-6);
        let top = s.top(4);
        let heavy: Vec<BlockId> = top.iter().map(|h| h.block).collect();
        for i in 0..4u32 {
            assert!(heavy.contains(&b(i)), "heavy key {i} lost");
        }
        for h in s.entries() {
            let t = truth.get(&h.block).copied().unwrap_or(0.0);
            assert!(h.weight + 1e-9 >= t, "estimate under-counts {:?}", h.block);
            assert!(
                h.weight - h.error <= t + 1e-9,
                "error bound violated for {:?}: est {} err {} true {}",
                h.block,
                h.weight,
                h.error,
                t
            );
        }
        assert!(s.error_bound() <= s.total_weight() / 10.0 + 1e-9);
    }

    #[test]
    fn merge_preserves_bounds() {
        let mut a = SpaceSaving::new(6);
        let mut c = SpaceSaving::new(6);
        let mut truth = std::collections::HashMap::new();
        for i in 0..30u32 {
            let w = ((i % 7) + 1) as f64;
            if i % 2 == 0 {
                a.offer(b(i % 9), w);
            } else {
                c.offer(b(i % 9), w);
            }
            *truth.entry(b(i % 9)).or_insert(0.0) += w;
        }
        let total_a = a.total_weight();
        a.merge(&c);
        assert!((a.total_weight() - (total_a + c.total_weight())).abs() < 1e-9);
        for h in a.entries() {
            let t = truth.get(&h.block).copied().unwrap_or(0.0);
            assert!(h.weight + 1e-9 >= t);
            assert!(h.weight - h.error <= t + 1e-9);
        }
    }

    #[test]
    fn top_is_deterministic_under_ties() {
        let mut s = SpaceSaving::new(4);
        s.offer(b(3), 5.0);
        s.offer(b(1), 5.0);
        s.offer(b(2), 5.0);
        let top = s.top(3);
        assert_eq!(
            top.iter().map(|h| h.block).collect::<Vec<_>>(),
            vec![b(1), b(2), b(3)]
        );
    }
}
