//! The crate's unified error type (hand-rolled `Display`/`Error` impls
//! in the workspace's house style — the `thiserror` derive is
//! deliberately not a dependency).
//!
//! The fine-grained enums ([`IngestError`], [`IntegrityError`],
//! [`ChaosError`]) stay on the functions that produce them; this type is
//! the one a caller driving the whole subsystem (the CLI's `stream`
//! subcommand) matches on, with `From` conversions from each layer.

use std::fmt;
use std::io;

use crate::engine::IngestError;
use crate::faultsim::ChaosError;
use crate::integrity::IntegrityError;

/// Why a streaming run could not complete.
#[derive(Debug)]
pub enum StreamError {
    /// The ingest engine refused or failed an operation.
    Ingest(IngestError),
    /// A checkpoint failed integrity verification.
    Integrity(IntegrityError),
    /// A fault-injected (chaos) run could not be supervised to the end.
    Chaos(ChaosError),
    /// Checkpoint or plan I/O failed.
    Io(io::Error),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Ingest(e) => write!(f, "ingest error: {e}"),
            StreamError::Integrity(e) => write!(f, "checkpoint integrity error: {e}"),
            StreamError::Chaos(e) => write!(f, "chaos run failed: {e}"),
            StreamError::Io(e) => write!(f, "stream I/O error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Ingest(e) => Some(e),
            StreamError::Integrity(e) => Some(e),
            StreamError::Chaos(e) => Some(e),
            StreamError::Io(e) => Some(e),
        }
    }
}

impl From<IngestError> for StreamError {
    fn from(e: IngestError) -> Self {
        StreamError::Ingest(e)
    }
}

impl From<IntegrityError> for StreamError {
    fn from(e: IntegrityError) -> Self {
        StreamError::Integrity(e)
    }
}

impl From<ChaosError> for StreamError {
    fn from(e: ChaosError) -> Self {
        StreamError::Chaos(e)
    }
}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_every_layer_with_chain() {
        let e: StreamError = IngestError::Finished { epochs: 4 }.into();
        assert!(e.to_string().contains("ingest error"));
        assert!(std::error::Error::source(&e).is_some());

        let e: StreamError = IntegrityError::MissingFooter.into();
        assert!(e.to_string().contains("integrity"));

        let e: StreamError = ChaosError::RestartsExhausted { limit: 2 }.into();
        assert!(e.to_string().contains("chaos"));

        let e: StreamError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("I/O"));
    }
}
