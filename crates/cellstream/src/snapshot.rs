//! Epoch-boundary checkpoints: serialize the engine, restore it later.
//!
//! The snapshot is a plain-data mirror of the engine's state with two
//! properties the checkpoint tests pin down:
//!
//! * **Canonical bytes** — maps are flattened to vectors in key order and
//!   sketch counters keep their internal order, so the same engine state
//!   always serializes to byte-identical JSON (no HashMap iteration
//!   nondeterminism, no non-string JSON map keys).
//! * **Lossless restore** — floats round-trip exactly through
//!   `serde_json`'s shortest-representation encoding, so an engine
//!   restored from disk continues producing bit-identical results.

use std::io;
use std::path::Path;

use netaddr::{Asn, BlockId};
use serde::{Deserialize, Serialize};

use crate::engine::StreamConfig;
use crate::hll::HyperLogLog;
use crate::shard::{BeaconAccum, DemandAccum, ShardState};
use crate::spacesaving::SpaceSaving;

/// Snapshot schema version, bumped on layout changes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// One block's beacon counters, flattened for serialization.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BeaconRow {
    /// The block.
    pub block: BlockId,
    /// Origin AS.
    pub asn: Asn,
    /// RUM hits folded so far.
    pub hits_total: u64,
    /// NetInfo-enabled hits.
    pub netinfo_hits: u64,
    /// Hits labeled cellular.
    pub cellular_hits: u64,
    /// Hits labeled wifi.
    pub wifi_hits: u64,
    /// Hits with any other label.
    pub other_hits: u64,
}

/// One block's demand accumulator, flattened for serialization.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DemandRow {
    /// The block.
    pub block: BlockId,
    /// Origin AS.
    pub asn: Asn,
    /// Sum of daily values folded so far.
    pub acc: f64,
    /// Days folded so far.
    pub days_seen: u32,
}

/// One resolver's distinct-client sketch.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResolverRow {
    /// Resolver id.
    pub resolver: u32,
    /// The sketch.
    pub sketch: HyperLogLog,
}

/// One shard's serialized state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// Events folded into this shard.
    pub events_seen: u64,
    /// Beacon accumulators, sorted by block.
    pub beacons: Vec<BeaconRow>,
    /// Demand accumulators, sorted by block.
    pub demand: Vec<DemandRow>,
    /// Resolver sketches, sorted by resolver id.
    pub resolvers: Vec<ResolverRow>,
    /// Heavy-hitter sketch, counters in internal order so a restored
    /// sketch evicts exactly as the original would have.
    pub heavy: SpaceSaving,
}

/// A complete engine checkpoint at an epoch boundary.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Schema version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The engine configuration the state was built under.
    pub config: StreamConfig,
    /// Total epochs in the stream layout.
    pub epochs_total: u32,
    /// Epochs ingested before this checkpoint.
    pub epochs_done: u32,
    /// Demand smoothing window (days).
    pub smoothing_days: u32,
    /// Per-shard state, indexed by shard id.
    pub shards: Vec<ShardSnapshot>,
}

impl Snapshot {
    /// Capture an engine's state (called by
    /// [`crate::IngestEngine::snapshot`]).
    pub(crate) fn capture(
        config: StreamConfig,
        epochs_total: u32,
        epochs_done: u32,
        smoothing_days: u32,
        shards: &[ShardState],
    ) -> Self {
        let shards = shards
            .iter()
            .map(|s| ShardSnapshot {
                events_seen: s.events_seen(),
                beacons: s
                    .beacons
                    .iter()
                    .map(|(&block, a)| BeaconRow {
                        block,
                        asn: a.asn,
                        hits_total: a.hits_total,
                        netinfo_hits: a.netinfo_hits,
                        cellular_hits: a.cellular_hits,
                        wifi_hits: a.wifi_hits,
                        other_hits: a.other_hits,
                    })
                    .collect(),
                demand: s
                    .demand
                    .iter()
                    .map(|(&block, a)| DemandRow {
                        block,
                        asn: a.asn,
                        acc: a.acc,
                        days_seen: a.days_seen,
                    })
                    .collect(),
                resolvers: s
                    .resolvers
                    .iter()
                    .map(|(&resolver, sketch)| ResolverRow {
                        resolver,
                        sketch: sketch.clone(),
                    })
                    .collect(),
                heavy: s.heavy.clone(),
            })
            .collect();
        Snapshot {
            version: SNAPSHOT_VERSION,
            config,
            epochs_total,
            epochs_done,
            smoothing_days,
            shards,
        }
    }

    /// Rebuild the engine's in-memory shard states.
    pub(crate) fn shard_states(&self) -> Vec<ShardState> {
        (0..self.shards.len())
            .map(|i| self.shard_state(i))
            .collect()
    }

    /// Rebuild a single shard's in-memory state (used by per-shard
    /// recovery to reset one shard without touching the others).
    pub(crate) fn shard_state(&self, idx: usize) -> ShardState {
        let s = &self.shards[idx];
        let mut state = ShardState::new(self.config.hll_precision, self.config.heavy_capacity);
        for r in &s.beacons {
            state.beacons.insert(
                r.block,
                BeaconAccum {
                    asn: r.asn,
                    hits_total: r.hits_total,
                    netinfo_hits: r.netinfo_hits,
                    cellular_hits: r.cellular_hits,
                    wifi_hits: r.wifi_hits,
                    other_hits: r.other_hits,
                },
            );
        }
        for r in &s.demand {
            state.demand.insert(
                r.block,
                DemandAccum {
                    asn: r.asn,
                    acc: r.acc,
                    days_seen: r.days_seen,
                },
            );
        }
        for r in &s.resolvers {
            state.resolvers.insert(r.resolver, r.sketch.clone());
        }
        state.heavy = s.heavy.clone();
        state.events_seen = s.events_seen;
        state
    }

    /// Structural sanity checks beyond what serde enforces: version,
    /// config validity, shard-count consistency, epoch ordering. A
    /// snapshot that fails here must not be restored.
    pub fn validate(&self) -> Result<(), String> {
        if self.version != SNAPSHOT_VERSION {
            return Err(format!(
                "snapshot version {} unsupported (expected {SNAPSHOT_VERSION})",
                self.version
            ));
        }
        self.config.validate()?;
        if self.shards.len() != self.config.shards as usize {
            return Err(format!(
                "snapshot holds {} shard states but its config says {}",
                self.shards.len(),
                self.config.shards
            ));
        }
        if self.epochs_done > self.epochs_total {
            return Err(format!(
                "snapshot claims {} epochs done of {} total",
                self.epochs_done, self.epochs_total
            ));
        }
        Ok(())
    }

    /// Canonical JSON encoding: byte-identical for identical state.
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("snapshot serialization is total");
        s.push('\n');
        s
    }

    /// Parse a snapshot, rejecting unknown schema versions.
    pub fn from_json(json: &str) -> io::Result<Self> {
        let snap: Snapshot = serde_json::from_str(json)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if snap.version != SNAPSHOT_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "snapshot version {} unsupported (expected {SNAPSHOT_VERSION})",
                    snap.version
                ),
            ));
        }
        Ok(snap)
    }

    /// Write the canonical encoding to a file: sealed with an integrity
    /// footer (length + CRC-32) and written atomically, so a crash
    /// mid-write can never leave a checkpoint that later restores as a
    /// silently-wrong engine.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        crate::integrity::write_atomic(path, &crate::integrity::seal(&self.to_json()))
    }

    /// Load a snapshot from a file written by [`write_to`](Self::write_to),
    /// rejecting truncated or bit-flipped files via the integrity footer.
    pub fn read_from(path: &Path) -> io::Result<Self> {
        Self::from_json(&crate::integrity::read_verified(path)?)
    }
}
