//! Crash-safe checkpoint files: atomic writes, integrity footers, and a
//! retained-depth checkpoint store.
//!
//! A torn or bit-rotted checkpoint must never be deserialized silently —
//! a resumed run folding from corrupt state would bias every downstream
//! measurement while looking perfectly healthy. Three layers prevent it:
//!
//! * **Atomic writes** ([`write_atomic`]) — content lands in a temp file
//!   in the target directory, is fsynced, then renamed over the final
//!   path, so a crash mid-write can tear only the temp file, never a
//!   checkpoint a restart would read.
//! * **Integrity footer** ([`seal`]/[`unseal`]) — every checkpoint ends
//!   with a one-line footer carrying the body's byte length and CRC-32.
//!   Truncation (length mismatch or missing footer) and corruption
//!   (checksum mismatch) are told apart and reported; CRC-32 detects all
//!   single-bit and single-byte errors.
//! * **Retained depth** ([`CheckpointStore`]) — the newest N checkpoints
//!   are kept, so when the newest fails verification a restart falls back
//!   to the last known-good one and replays the missing epochs.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::snapshot::Snapshot;

/// Footer marker. The `v1` tag versions the footer layout itself,
/// independently of the snapshot schema version inside the body.
pub const FOOTER_PREFIX: &str = "#cellstream-checkpoint v1 ";

/// Default number of checkpoints a [`CheckpointStore`] retains.
pub const DEFAULT_RETAIN: usize = 3;

/// Why a sealed checkpoint failed verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IntegrityError {
    /// No footer line found — the file was truncated before (or inside)
    /// the footer, or was never sealed.
    MissingFooter,
    /// A footer line is present but unparsable.
    BadFooter(String),
    /// The body is shorter or longer than the footer's recorded length.
    Truncated {
        /// Body length recorded in the footer.
        expected: usize,
        /// Body length actually present.
        actual: usize,
    },
    /// The body's checksum does not match the footer's.
    ChecksumMismatch {
        /// CRC-32 recorded in the footer.
        expected: u32,
        /// CRC-32 of the body as read.
        actual: u32,
    },
}

impl fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrityError::MissingFooter => {
                write!(f, "integrity footer missing (file truncated or unsealed)")
            }
            IntegrityError::BadFooter(why) => write!(f, "bad integrity footer: {why}"),
            IntegrityError::Truncated { expected, actual } => write!(
                f,
                "checkpoint truncated: footer records {expected} body bytes, found {actual}"
            ),
            IntegrityError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checkpoint corrupt: footer crc32 {expected:08x}, body crc32 {actual:08x}"
            ),
        }
    }
}

impl std::error::Error for IntegrityError {}

/// IEEE CRC-32 lookup table (reflected, polynomial `0xEDB88320`).
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// IEEE CRC-32 of `bytes` (the zlib/PNG variant).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append the integrity footer to a checkpoint body.
///
/// The body must be the canonical snapshot JSON (newline-terminated); the
/// sealed form is what [`Snapshot::write_to`] puts on disk.
pub fn seal(body: &str) -> String {
    format!(
        "{body}{FOOTER_PREFIX}len={} crc32={:08x}\n",
        body.len(),
        crc32(body.as_bytes())
    )
}

/// Strict decimal parse for the footer's `len=` field: plain ASCII
/// digits only. `str::parse` alone would accept a leading `+`, letting
/// some single-byte corruptions of the field parse to the original value.
fn parse_len(v: &str) -> Option<usize> {
    if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    v.parse().ok()
}

/// Strict parse for the footer's `crc32=` field: exactly 8 lowercase hex
/// digits, matching what [`seal`] writes. `from_str_radix` alone would
/// accept uppercase (so the single-bit flip `a` → `A` would parse to the
/// same value) and a leading `+`.
fn parse_crc(v: &str) -> Option<u32> {
    if v.len() != 8 || !v.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
        return None;
    }
    u32::from_str_radix(v, 16).ok()
}

/// Verify a sealed checkpoint and return its body.
///
/// Any truncation or byte-level corruption of the sealed form is rejected
/// with a specific [`IntegrityError`]; the body is returned only when both
/// the recorded length and checksum match exactly.
pub fn unseal(data: &str) -> Result<&str, IntegrityError> {
    let idx = data
        .rfind(FOOTER_PREFIX)
        .ok_or(IntegrityError::MissingFooter)?;
    let (body, footer_line) = data.split_at(idx);
    let footer = footer_line
        .strip_prefix(FOOTER_PREFIX)
        .expect("split at match start")
        .strip_suffix('\n')
        .ok_or_else(|| IntegrityError::BadFooter("footer not newline-terminated".into()))?;
    let mut len = None;
    let mut crc = None;
    for field in footer.split(' ') {
        if let Some(v) = field.strip_prefix("len=") {
            len = parse_len(v);
        } else if let Some(v) = field.strip_prefix("crc32=") {
            crc = parse_crc(v);
        }
    }
    let footer_err = || IntegrityError::BadFooter("missing len or crc32 field".into());
    let expected_len = len.ok_or_else(footer_err)?;
    let expected_crc = crc.ok_or_else(footer_err)?;
    if body.len() != expected_len {
        return Err(IntegrityError::Truncated {
            expected: expected_len,
            actual: body.len(),
        });
    }
    let actual = crc32(body.as_bytes());
    if actual != expected_crc {
        return Err(IntegrityError::ChecksumMismatch {
            expected: expected_crc,
            actual,
        });
    }
    Ok(body)
}

/// One step of the atomic-write durability sequence, recorded in order
/// so tests can assert the full temp → fsync → rename → dir-fsync chain
/// actually ran (and in that order) rather than trusting the prose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AtomicStep {
    /// Content written into the temp file.
    WriteTemp,
    /// Temp file contents fsynced to stable storage.
    SyncTemp,
    /// Temp file renamed over the target path.
    Rename,
    /// Parent directory fsynced, making the rename itself durable.
    SyncDir,
}

/// The directory whose entry must be fsynced for a rename of `path` to
/// be durable. A bare file name lives in the current directory, which
/// needs the flush just as much as an explicit parent does.
fn fsync_dir_of(path: &Path) -> PathBuf {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

fn write_atomic_impl(
    path: &Path,
    content: &[u8],
    trace: &mut dyn FnMut(AtomicStep),
) -> io::Result<()> {
    let dir = fsync_dir_of(path);
    fs::create_dir_all(&dir)?;
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(content)?;
        trace(AtomicStep::WriteTemp);
        f.sync_all()?;
        trace(AtomicStep::SyncTemp);
    }
    fs::rename(&tmp, path)?;
    trace(AtomicStep::Rename);
    // Make the rename itself durable: until the directory entry is
    // flushed, a crash can forget the new name and resurface the old
    // file — or nothing at all for a first write. A directory that
    // cannot be fsynced is therefore a real durability failure and the
    // error propagates. (The pre-fix code skipped the flush entirely
    // for bare file names and swallowed errors for the rest.)
    #[cfg(unix)]
    {
        let df = fs::File::open(&dir)?;
        df.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        // Directories cannot be opened as files on every platform;
        // flush best-effort there rather than failing the write.
        if let Ok(df) = fs::File::open(&dir) {
            let _ = df.sync_all();
        }
    }
    trace(AtomicStep::SyncDir);
    Ok(())
}

/// Write `content` to `path` atomically: temp file in the same directory,
/// fsync, rename over the target, directory fsync. A crash at any point
/// leaves either the old file or the new one, never a tear; once this
/// returns, the new file survives a crash (the rename is flushed too).
pub fn write_atomic(path: &Path, content: &str) -> io::Result<()> {
    write_atomic_bytes(path, content.as_bytes())
}

/// Byte-level [`write_atomic`]: the same temp → fsync → rename →
/// dir-fsync sequence for binary payloads (e.g. the frozen serving
/// artifact, which carries a binary CRC trailer instead of the text
/// footer).
pub fn write_atomic_bytes(path: &Path, content: &[u8]) -> io::Result<()> {
    write_atomic_impl(path, content, &mut |_| {})
}

/// Read a sealed checkpoint file, rejecting any corruption.
///
/// Invalid UTF-8 (a bit flip can produce it) is reported as corruption,
/// not a panic.
pub fn read_verified(path: &Path) -> io::Result<String> {
    let bytes = fs::read(path)?;
    let text = String::from_utf8(bytes).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{}: checkpoint is not valid UTF-8 (corrupt)",
                path.display()
            ),
        )
    })?;
    let body = unseal(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })?;
    Ok(body.to_string())
}

/// Outcome of [`CheckpointStore::load_latest_good`].
#[derive(Debug)]
pub struct RecoveryOutcome {
    /// The newest checkpoint that passed verification, with its path, or
    /// `None` when the store holds no usable checkpoint.
    pub snapshot: Option<(Snapshot, PathBuf)>,
    /// Checkpoints that failed verification (newest first), with the
    /// reason each was rejected.
    pub skipped: Vec<(PathBuf, String)>,
}

/// A directory of sealed, atomically-written checkpoints, retained N deep
/// so recovery can fall back past a corrupt newest file.
///
/// File layout: `ckpt-ep<NNNNNN>.json`, where the number is the
/// checkpoint's `epochs_done` — one file per epoch boundary, pruned to
/// the newest `retain` after every save.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    retain: usize,
    obs: cellobs::Observer,
}

impl CheckpointStore {
    /// A store over `dir`, retaining the newest `retain` checkpoints
    /// (clamped to at least 1). The directory is created on first save.
    pub fn new(dir: impl Into<PathBuf>, retain: usize) -> Self {
        CheckpointStore {
            dir: dir.into(),
            retain: retain.max(1),
            obs: cellobs::Observer::disabled(),
        }
    }

    /// Attach an observer: every save reports checkpoint count and sealed
    /// bytes written (`stream.checkpoint.*`). Note the byte counter
    /// depends on the shard count — per-shard snapshot sections grow with
    /// the shard budget — unlike the engine's event counters.
    pub fn with_observer(mut self, obs: cellobs::Observer) -> Self {
        self.obs = obs;
        self
    }

    /// The directory this store manages.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Retained depth.
    pub fn retain(&self) -> usize {
        self.retain
    }

    /// Path a checkpoint with the given `epochs_done` is stored at.
    pub fn path_for(&self, epochs_done: u32) -> PathBuf {
        self.dir.join(format!("ckpt-ep{epochs_done:06}.json"))
    }

    /// The `epochs_done` encoded in a store file name, if it is one.
    fn epoch_of(name: &str) -> Option<u32> {
        name.strip_prefix("ckpt-ep")?
            .strip_suffix(".json")?
            .parse()
            .ok()
    }

    /// Seal and atomically write `snapshot`, then prune beyond the
    /// retained depth. Returns the path written.
    pub fn save(&self, snapshot: &Snapshot) -> io::Result<PathBuf> {
        let path = self.path_for(snapshot.epochs_done);
        let sealed = seal(&snapshot.to_json());
        write_atomic(&path, &sealed)?;
        self.prune()?;
        if self.obs.is_enabled() {
            self.obs.counter("stream.checkpoint.writes").inc();
            self.obs
                .counter("stream.checkpoint.bytes")
                .add(sealed.len() as u64);
        }
        Ok(path)
    }

    /// All checkpoint files in the store, oldest first. A missing
    /// directory is an empty store, not an error.
    pub fn list(&self) -> io::Result<Vec<(u32, PathBuf)>> {
        let entries = match fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut out = Vec::new();
        for entry in entries {
            let entry = entry?;
            if let Some(epoch) = entry.file_name().to_str().and_then(Self::epoch_of) {
                out.push((epoch, entry.path()));
            }
        }
        out.sort();
        Ok(out)
    }

    fn prune(&self) -> io::Result<()> {
        let list = self.list()?;
        if list.len() > self.retain {
            for (_, path) in &list[..list.len() - self.retain] {
                fs::remove_file(path)?;
            }
        }
        Ok(())
    }

    /// Load the newest checkpoint that passes integrity *and* schema
    /// verification, walking backwards past corrupt files and recording
    /// why each was rejected.
    pub fn load_latest_good(&self) -> io::Result<RecoveryOutcome> {
        let mut skipped = Vec::new();
        for (_, path) in self.list()?.into_iter().rev() {
            let loaded = read_verified(&path)
                .and_then(|body| Snapshot::from_json(&body))
                .and_then(|snap| {
                    snap.validate()
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                    Ok(snap)
                });
            match loaded {
                Ok(snapshot) => {
                    return Ok(RecoveryOutcome {
                        snapshot: Some((snapshot, path)),
                        skipped,
                    })
                }
                Err(e) => skipped.push((path, e.to_string())),
            }
        }
        Ok(RecoveryOutcome {
            snapshot: None,
            skipped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn seal_unseal_roundtrips() {
        let body = "{\"hello\": 1}\n";
        let sealed = seal(body);
        assert!(sealed.starts_with(body));
        assert!(sealed.contains(FOOTER_PREFIX));
        assert_eq!(unseal(&sealed).expect("verifies"), body);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let sealed = seal("{\"payload\": [1, 2, 3]}\n");
        for cut in 0..sealed.len() {
            let prefix = &sealed[..cut];
            assert!(
                unseal(prefix).is_err(),
                "truncation to {cut} of {} bytes must be rejected",
                sealed.len()
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let sealed = seal("{\"payload\": \"abcdef\"}\n");
        let bytes = sealed.as_bytes();
        for i in 0..bytes.len() {
            for bit in 0..8u8 {
                let mut flipped = bytes.to_vec();
                flipped[i] ^= 1 << bit;
                // A flip may break UTF-8 — that counts as detection too.
                if let Ok(text) = std::str::from_utf8(&flipped) {
                    assert!(
                        unseal(text).is_err(),
                        "flip of bit {bit} at byte {i} must be rejected"
                    );
                }
            }
        }
    }

    #[test]
    fn atomic_write_leaves_no_temp_file() {
        let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("integrity_atomic");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("ckpt-ep000001.json");
        write_atomic(&path, "content\n").expect("write");
        assert_eq!(fs::read_to_string(&path).expect("read back"), "content\n");
        assert!(
            !path.with_extension("tmp").exists(),
            "temp file must be renamed away"
        );
        // Overwrite goes through the same path.
        write_atomic(&path, "newer\n").expect("overwrite");
        assert_eq!(fs::read_to_string(&path).expect("read back"), "newer\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_runs_the_full_durability_sequence() {
        let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("integrity_sequence");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("ckpt-ep000001.json");
        let mut steps = Vec::new();
        write_atomic_impl(&path, b"content\n", &mut |s| steps.push(s)).expect("write");
        assert_eq!(
            steps,
            [
                AtomicStep::WriteTemp,
                AtomicStep::SyncTemp,
                AtomicStep::Rename,
                AtomicStep::SyncDir,
            ],
            "every durability step must run, in order"
        );
        assert_eq!(fs::read_to_string(&path).expect("read back"), "content\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bare_filenames_fsync_the_current_directory() {
        // The pre-fix code skipped the directory flush entirely when the
        // path had no parent component; the resolver must map that case
        // to `.` so the rename still gets made durable.
        assert_eq!(fsync_dir_of(Path::new("ckpt.json")), PathBuf::from("."));
        assert_eq!(
            fsync_dir_of(Path::new("store/ckpt.json")),
            PathBuf::from("store")
        );
        assert_eq!(fsync_dir_of(Path::new("/ckpt.json")), PathBuf::from("/"));
        // And the full sequence — including the dir fsync — runs for a
        // bare name (written into the test cwd, then cleaned up).
        let name = Path::new("it-integrity-bare-name.tmp.json");
        let mut steps = Vec::new();
        write_atomic_impl(name, b"bare\n", &mut |s| steps.push(s)).expect("write bare name");
        assert_eq!(*steps.last().expect("steps recorded"), AtomicStep::SyncDir);
        assert_eq!(fs::read_to_string(name).expect("read back"), "bare\n");
        let _ = fs::remove_file(name);
    }

    #[test]
    fn write_atomic_bytes_roundtrips_binary_payloads() {
        let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("integrity_bytes");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("artifact.bin");
        let payload: Vec<u8> = (0..=255u8).collect();
        write_atomic_bytes(&path, &payload).expect("write");
        assert_eq!(fs::read(&path).expect("read back"), payload);
        assert!(!path.with_extension("tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
