//! # cellstream — streaming ingest engine
//!
//! The measurement platform of the paper never sees its datasets as
//! files: RUM beacons and demand snapshots arrive as an unbounded event
//! stream and an ingest tier folds them into per-block state. This crate
//! is that tier for the synthetic platform — it consumes the lazy,
//! epoch-sliced stream of [`cdnsim::EventSource`] and maintains:
//!
//! * **Sharded accumulators** — events are routed by block hash to one of
//!   `N` shards ([`ShardRouter`]); each shard folds its blocks' beacon
//!   counters and demand sums incrementally ([`ShardState`]).
//!   Memory is bounded by distinct active blocks plus fixed sketch
//!   budgets, not by stream length.
//! * **Mergeable sketches** — a [`HyperLogLog`] per resolver estimates
//!   distinct client blocks (standard error `1.04/sqrt(2^p)`, under 1.7%
//!   at the default precision 12; register-max merging is *exact*, so
//!   estimates are identical at any shard count), and a weighted
//!   [`SpaceSaving`] tracker surfaces the blocks concentrating demand
//!   (per-key bound `estimate − error ≤ true ≤ estimate`, worst-case
//!   over-count `total/capacity`).
//! * **Checkpoint/restore** — at any epoch boundary the engine serializes
//!   to a canonical JSON [`Snapshot`]; [`IngestEngine::restore`] resumes
//!   it, and a resumed run is byte-identical to an uninterrupted one.
//! * **Fault tolerance** — checkpoints are written atomically and sealed
//!   with a length + CRC-32 footer; a [`CheckpointStore`] retains the
//!   newest N so recovery can fall back past a truncated or bit-flipped
//!   file. The `faultsim` layer injects deterministic faults (shard
//!   panics, process crashes, checkpoint corruption, source stalls) from
//!   a serializable [`FaultPlan`], and [`run_chaos`] supervises a run
//!   through all of them — the chaos suite asserts the survivor's state
//!   is byte-identical to a fault-free run's.
//!
//! ## Determinism contract
//!
//! Folding the *complete* stream reproduces the batch datasets of
//! [`cdnsim::generate_beacons`]/[`cdnsim::generate_demand`] **bit for
//! bit** — integer counters because addition commutes across epoch
//! slices that sum exactly, demand floats because each block's days are
//! folded by a single shard in day order, replaying the batch
//! accumulation sequence. The equivalence holds for every shard count;
//! `tests/streaming_equivalence.rs` at the workspace root pins it down,
//! including classification parity of the downstream `cellspot` study.

mod engine;
mod error;
mod faultsim;
mod hll;
mod integrity;
mod shard;
mod snapshot;
mod spacesaving;

pub use engine::{
    FoldAction, IngestEngine, IngestError, IngestObserver, RawBlockCounters, ResolverClients,
    ResolverMap, SketchReport, StreamConfig, StreamOutputs,
};
pub use error::StreamError;
pub use faultsim::{
    run_chaos, run_chaos_observed, ChaosError, ChaosReport, Fault, FaultInjector, FaultPlan,
};
pub use hll::{HyperLogLog, MAX_PRECISION, MIN_PRECISION};
pub use integrity::{
    crc32, read_verified, seal, unseal, write_atomic, write_atomic_bytes, CheckpointStore,
    IntegrityError, RecoveryOutcome, DEFAULT_RETAIN, FOOTER_PREFIX,
};
pub use shard::{BeaconAccum, DemandAccum, ShardRouter, ShardState};
pub use snapshot::{BeaconRow, DemandRow, ResolverRow, ShardSnapshot, Snapshot, SNAPSHOT_VERSION};
pub use spacesaving::{HeavyHitter, SpaceSaving};

pub mod prelude {
    //! One-line import for consumers of the streaming subsystem.
    pub use crate::{
        CheckpointStore, FaultPlan, IngestEngine, ResolverMap, Snapshot, StreamConfig, StreamError,
        StreamOutputs,
    };
}
