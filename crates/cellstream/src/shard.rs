//! Shard routing and per-shard bounded accumulators.
//!
//! The ingest engine partitions the event stream by *block*, so every
//! event of one block lands on the same shard and is folded in arrival
//! order. That single invariant buys both determinism properties the
//! subsystem advertises:
//!
//! * integer beacon counters commute, so their shard-merged sums are
//!   exact at any shard count;
//! * a block's demand days are summed by one shard in day order, so the
//!   floating-point fold replays the batch accumulation bit for bit.

use std::collections::BTreeMap;

use netaddr::{Asn, BlockId};
use serde::{Deserialize, Serialize};

use cdnsim::stream::block_stream;
use cdnsim::{BeaconDelta, DemandDay, StreamEvent};

use crate::hll::{mix64, HyperLogLog};
use crate::spacesaving::SpaceSaving;

/// Stateless block → shard router.
///
/// Routing hashes the block's stable stream id, never its position in any
/// record vector, so the assignment is a pure function of block identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardRouter {
    shards: u32,
}

impl ShardRouter {
    /// A router over `shards` shards.
    ///
    /// # Panics
    /// Panics when `shards == 0`.
    pub fn new(shards: u32) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardRouter { shards }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard a block's events belong to.
    pub fn shard_of(&self, block: BlockId) -> u32 {
        (mix64(block_stream(block)) % self.shards as u64) as u32
    }
}

/// Running beacon counters for one block (the streaming counterpart of a
/// [`cdnsim::BeaconRecord`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BeaconAccum {
    /// Origin AS.
    pub asn: Asn,
    /// RUM hits folded so far.
    pub hits_total: u64,
    /// NetInfo-enabled hits folded so far.
    pub netinfo_hits: u64,
    /// Hits labeled cellular.
    pub cellular_hits: u64,
    /// Hits labeled wifi.
    pub wifi_hits: u64,
    /// Hits with any other label.
    pub other_hits: u64,
}

/// Running demand accumulator for one block: the sum of raw daily draws
/// seen so far, divided by the smoothing window at finalize time.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DemandAccum {
    /// Origin AS.
    pub asn: Asn,
    /// Sum of daily values, folded in day order.
    pub acc: f64,
    /// Days folded so far.
    pub days_seen: u32,
}

/// One shard's complete ingest state: per-block accumulators plus this
/// shard's slice of the sketches. Memory is bounded by the number of
/// *distinct active blocks* routed here (not by stream length) plus the
/// fixed sketch budgets.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardState {
    /// Per-block beacon counters.
    pub(crate) beacons: BTreeMap<BlockId, BeaconAccum>,
    /// Per-block demand accumulators.
    pub(crate) demand: BTreeMap<BlockId, DemandAccum>,
    /// Distinct-client sketch per resolver id (only resolvers serving
    /// blocks routed to this shard appear).
    pub(crate) resolvers: BTreeMap<u32, HyperLogLog>,
    /// Demand heavy-hitter sketch over this shard's blocks.
    pub(crate) heavy: SpaceSaving,
    /// Events folded into this shard.
    pub(crate) events_seen: u64,
    hll_precision: u8,
}

impl ShardState {
    /// An empty shard with the given sketch budgets.
    pub fn new(hll_precision: u8, heavy_capacity: usize) -> Self {
        ShardState {
            beacons: BTreeMap::new(),
            demand: BTreeMap::new(),
            resolvers: BTreeMap::new(),
            heavy: SpaceSaving::new(heavy_capacity),
            events_seen: 0,
            hll_precision,
        }
    }

    /// Fold one event. `resolver` is the resolver serving the event's
    /// block, when known — demand events feed that resolver's
    /// distinct-client sketch.
    pub fn apply(&mut self, event: &StreamEvent, resolver: Option<u32>) {
        self.events_seen += 1;
        match event {
            StreamEvent::Beacon(d) => self.apply_beacon(d),
            StreamEvent::Demand(d) => self.apply_demand(d, resolver),
        }
    }

    fn apply_beacon(&mut self, d: &BeaconDelta) {
        let a = self.beacons.entry(d.block).or_insert(BeaconAccum {
            asn: d.asn,
            hits_total: 0,
            netinfo_hits: 0,
            cellular_hits: 0,
            wifi_hits: 0,
            other_hits: 0,
        });
        a.hits_total += d.hits_total;
        a.netinfo_hits += d.netinfo_hits;
        a.cellular_hits += d.cellular_hits;
        a.wifi_hits += d.wifi_hits;
        a.other_hits += d.other_hits;
    }

    fn apply_demand(&mut self, d: &DemandDay, resolver: Option<u32>) {
        let a = self.demand.entry(d.block).or_insert(DemandAccum {
            asn: d.asn,
            acc: 0.0,
            days_seen: 0,
        });
        a.acc += d.value;
        a.days_seen += 1;
        self.heavy.offer(d.block, d.value);
        if let Some(r) = resolver {
            let precision = self.hll_precision;
            self.resolvers
                .entry(r)
                .or_insert_with(|| HyperLogLog::new(precision))
                .insert_u64(block_stream(d.block));
        }
    }

    /// Distinct blocks with beacon state.
    pub fn beacon_blocks(&self) -> usize {
        self.beacons.len()
    }

    /// Distinct blocks with demand state.
    pub fn demand_blocks(&self) -> usize {
        self.demand.len()
    }

    /// Events folded into this shard so far.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// HLL precision this shard builds resolver sketches with.
    pub fn hll_precision(&self) -> u8 {
        self.hll_precision
    }

    /// Approximate bytes of live state (accumulators + sketches) — the
    /// quantity the streaming-vs-batch bench reports as peak state.
    pub fn state_bytes(&self) -> usize {
        use std::mem::size_of;
        self.beacons.len() * (size_of::<BlockId>() + size_of::<BeaconAccum>())
            + self.demand.len() * (size_of::<BlockId>() + size_of::<DemandAccum>())
            + self
                .resolvers
                .values()
                .map(|h| size_of::<u32>() + h.state_bytes())
                .sum::<usize>()
            + self.heavy.state_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netaddr::Block24;

    fn blk(i: u32) -> BlockId {
        BlockId::V4(Block24::from_index(i))
    }

    #[test]
    fn router_is_total_and_stable() {
        for shards in [1u32, 2, 7, 16] {
            let r = ShardRouter::new(shards);
            for i in 0..1000u32 {
                let s = r.shard_of(blk(i));
                assert!(s < shards);
                assert_eq!(s, r.shard_of(blk(i)), "routing must be pure");
            }
        }
    }

    #[test]
    fn router_spreads_blocks() {
        let r = ShardRouter::new(8);
        let mut counts = [0u32; 8];
        for i in 0..8000u32 {
            counts[r.shard_of(blk(i)) as usize] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (500..=1500).contains(&c),
                "shard {s} got {c} of 8000 blocks"
            );
        }
    }

    #[test]
    fn beacon_fold_accumulates() {
        let mut s = ShardState::new(8, 4);
        let d = BeaconDelta {
            epoch: 0,
            block: blk(1),
            asn: Asn(65000),
            hits_total: 10,
            netinfo_hits: 4,
            cellular_hits: 2,
            wifi_hits: 1,
            other_hits: 1,
        };
        s.apply(&StreamEvent::Beacon(d), None);
        s.apply(&StreamEvent::Beacon(BeaconDelta { epoch: 1, ..d }), None);
        let a = s.beacons[&blk(1)];
        assert_eq!(a.hits_total, 20);
        assert_eq!(a.netinfo_hits, 8);
        assert_eq!(s.events_seen(), 2);
    }

    #[test]
    fn demand_fold_tracks_days_and_sketches() {
        let mut s = ShardState::new(8, 4);
        for day in 0..3u32 {
            s.apply(
                &StreamEvent::Demand(DemandDay {
                    epoch: 0,
                    day,
                    block: blk(7),
                    asn: Asn(65001),
                    value: 2.5,
                }),
                Some(11),
            );
        }
        let a = s.demand[&blk(7)];
        assert_eq!(a.days_seen, 3);
        assert!((a.acc - 7.5).abs() < 1e-12);
        // One distinct client block behind resolver 11.
        let est = s.resolvers[&11].estimate();
        assert!((0.5..=1.5).contains(&est), "estimate {est}");
        assert_eq!(s.heavy.top(1)[0].block, blk(7));
    }
}
