//! The batch query engine: rayon fan-out over an IP list with
//! per-chunk hot-block caches and `cellobs` instrumentation.
//!
//! ## Determinism contract
//!
//! The batch is split into fixed-size chunks ([`QUERY_CHUNK`]) that
//! rayon distributes over worker threads; every chunk starts with a
//! *fresh* direct-mapped hot-block cache. Because chunk boundaries
//! depend only on the query list — never on the thread count — the
//! result vector and every counter ([`BatchStats`], and the
//! `serve.lookups` / `serve.matched` / `serve.cache.hits` /
//! `serve.cache.misses` / `serve.cache.uncached` observer counters) are
//! identical at any pool width. Only the `serve.lookup.ns` latency
//! histogram reads the wall clock and sits outside the contract, like
//! every other duration in the workspace's observability layer — but its
//! *sample count* is deterministic: exactly one sample per lookup, so
//! exported percentiles are distributions of real per-lookup latencies,
//! never of per-chunk means.
//!
//! The cache key is the queried address masked to the family's
//! *longest* served prefix length: two addresses equal under that mask
//! are equal under every shorter served mask too, so caching the full
//! longest-prefix-match result under it is sound.

use std::str::FromStr;
use std::time::Instant;

use cellobs::Observer;
use netaddr::{fmt_ipv4, fmt_ipv6, Ipv4Net, Ipv6Net};
use rayon::prelude::*;

use crate::error::ServeError;
use crate::frozen::{FrozenIndex, PrefixKey, ServeLabel};
use crate::view::IndexView;

/// Queries per work unit. Fixed — never derived from the thread count —
/// so cache resets, and with them the hit/miss counters, depend only on
/// the data (same rationale as `cellspot`'s aggregation chunking).
pub const QUERY_CHUNK: usize = 1024;

/// Slots in the per-chunk direct-mapped hot-block cache.
const CACHE_SLOTS: usize = 256;

/// A parsed query address, one of the two families.
#[derive(Clone, Copy, Debug, Hash, PartialEq, Eq)]
pub enum IpKey {
    /// IPv4 address in host byte order.
    V4(u32),
    /// IPv6 address in host byte order.
    V6(u128),
}

impl IpKey {
    /// Parse a textual IPv4 (`203.0.113.5`) or IPv6 (`2001:db8::1`)
    /// address.
    ///
    /// # Errors
    /// [`ServeError::BadAddress`] when the text parses as neither.
    pub fn parse(s: &str) -> Result<IpKey, ServeError> {
        if s.contains(':') {
            std::net::Ipv6Addr::from_str(s)
                .map(|a| IpKey::V6(u128::from(a)))
                .map_err(|_| ServeError::BadAddress(s.to_string()))
        } else {
            std::net::Ipv4Addr::from_str(s)
                .map(|a| IpKey::V4(u32::from(a)))
                .map_err(|_| ServeError::BadAddress(s.to_string()))
        }
    }
}

impl std::fmt::Display for IpKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IpKey::V4(a) => f.write_str(&fmt_ipv4(*a)),
            IpKey::V6(a) => f.write_str(&fmt_ipv6(*a)),
        }
    }
}

/// The prefix a lookup matched, tagged by family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchedPrefix {
    /// An IPv4 served prefix.
    V4(Ipv4Net),
    /// An IPv6 served prefix.
    V6(Ipv6Net),
}

impl std::fmt::Display for MatchedPrefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatchedPrefix::V4(net) => write!(f, "{net}"),
            MatchedPrefix::V6(net) => write!(f, "{net}"),
        }
    }
}

/// One successful lookup: the most specific served prefix covering the
/// queried address, and its label.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LookupMatch {
    /// The matched prefix.
    pub prefix: MatchedPrefix,
    /// Its AS + class label.
    pub label: ServeLabel,
}

/// Deterministic batch counters (see the module docs for the
/// contract). `cache_hits + cache_misses + uncached == lookups` always
/// holds: every lookup either consulted a chunk cache (hit or miss) or
/// targeted a family with no served prefixes at all (`uncached`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Addresses looked up.
    pub lookups: u64,
    /// Lookups that matched a served prefix.
    pub matched: u64,
    /// Lookups answered from a chunk's hot-block cache.
    pub cache_hits: u64,
    /// Lookups that consulted the cache, missed, and walked the index
    /// (populating the cache).
    pub cache_misses: u64,
    /// Lookups against a family with no served prefixes: a guaranteed
    /// non-match that never consults the cache, accounted separately so
    /// miss counters measure real cache behaviour.
    pub uncached: u64,
}

impl BatchStats {
    fn absorb(&mut self, other: BatchStats) {
        self.lookups += other.lookups;
        self.matched += other.matched;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.uncached += other.uncached;
    }
}

/// One cache slot: the longest-mask key it answers for, and the cached
/// result (`None` result = cached miss).
type CacheSlot<K> = Option<(K, Option<(u8, u32)>)>;

/// High-throughput lookups over any [`IndexView`] — the owned
/// [`FrozenIndex`] (the default, so existing `QueryEngine<'_>`
/// annotations keep compiling), the zero-copy
/// [`MappedIndex`](crate::MappedIndex), or an
/// [`ArtifactHandle`](crate::ArtifactHandle).
pub struct QueryEngine<'a, V: IndexView + ?Sized = FrozenIndex> {
    index: &'a V,
    obs: Observer,
}

impl<'a, V: IndexView + ?Sized> QueryEngine<'a, V> {
    /// An engine over a loaded index, with a disabled observer.
    pub fn new(index: &'a V) -> Self {
        QueryEngine {
            index,
            obs: Observer::disabled(),
        }
    }

    /// Attach an observer; batches report `serve.*` counters and the
    /// `serve.lookup.ns` latency histogram into it.
    pub fn with_observer(mut self, obs: Observer) -> Self {
        self.obs = obs;
        self
    }

    /// Look up a single address (no cache, no instrumentation).
    pub fn lookup(&self, ip: IpKey) -> Option<LookupMatch> {
        match ip {
            IpKey::V4(a) => self.index.lookup_v4(a).map(|(net, label)| LookupMatch {
                prefix: MatchedPrefix::V4(net),
                label,
            }),
            IpKey::V6(a) => self.index.lookup_v6(a).map(|(net, label)| LookupMatch {
                prefix: MatchedPrefix::V6(net),
                label,
            }),
        }
    }

    /// Run a batch: results in query order, plus the deterministic
    /// counters. Chunks run on the current rayon pool — wrap the call
    /// in [`rayon::ThreadPool::install`] to pin the width.
    pub fn run(&self, queries: &[IpKey]) -> (Vec<Option<LookupMatch>>, BatchStats) {
        let chunks: Vec<(Vec<Option<LookupMatch>>, BatchStats)> = queries
            .par_chunks(QUERY_CHUNK)
            .map(|chunk| self.run_chunk(chunk))
            .collect();
        let mut results = Vec::with_capacity(queries.len());
        let mut stats = BatchStats::default();
        for (r, s) in chunks {
            results.extend(r);
            stats.absorb(s);
        }
        self.obs.counter("serve.lookups").add(stats.lookups);
        self.obs.counter("serve.matched").add(stats.matched);
        self.obs.counter("serve.cache.hits").add(stats.cache_hits);
        self.obs
            .counter("serve.cache.misses")
            .add(stats.cache_misses);
        self.obs.counter("serve.cache.uncached").add(stats.uncached);
        (results, stats)
    }

    fn run_chunk(&self, chunk: &[IpKey]) -> (Vec<Option<LookupMatch>>, BatchStats) {
        // Per-lookup latency sampling: one histogram sample per lookup,
        // so percentiles describe lookups, not chunk means. The clock is
        // only read when an observer is attached, keeping the
        // unobserved hot path branch-predictable and clock-free.
        let timed = self.obs.is_enabled();
        let latency = self.obs.histogram("serve.lookup.ns");
        // The family masks are chunk-invariant: read them once, not per
        // lookup, so the hot loop never re-walks the level directory.
        let top_v4 = self.index.longest_len_v4();
        let top_v6 = self.index.longest_len_v6();
        let mut stats = BatchStats::default();
        let mut v4_cache: Vec<CacheSlot<u32>> = vec![None; CACHE_SLOTS];
        let mut v6_cache: Vec<CacheSlot<u128>> = vec![None; CACHE_SLOTS];
        let mut out = Vec::with_capacity(chunk.len());
        for (i, &ip) in chunk.iter().enumerate() {
            // Overlap the next query's first probe with this lookup:
            // zero-copy views issue software prefetches, owned views
            // no-op.
            match chunk.get(i + 1) {
                Some(IpKey::V4(a)) => self.index.prefetch_v4(*a),
                Some(IpKey::V6(a)) => self.index.prefetch_v6(*a),
                None => {}
            }
            stats.lookups += 1;
            let start = timed.then(Instant::now);
            let hit = match ip {
                IpKey::V4(a) => cached_lookup(
                    top_v4,
                    |addr| self.index.lpm_v4(addr),
                    &mut v4_cache,
                    a,
                    &mut stats,
                )
                .map(|(len, idx)| LookupMatch {
                    prefix: MatchedPrefix::V4(
                        Ipv4Net::new(a, len).expect("level length ≤ 32 by construction"),
                    ),
                    label: self.index.label_at(idx),
                }),
                IpKey::V6(a) => cached_lookup(
                    top_v6,
                    |addr| self.index.lpm_v6(addr),
                    &mut v6_cache,
                    a,
                    &mut stats,
                )
                .map(|(len, idx)| LookupMatch {
                    prefix: MatchedPrefix::V6(
                        Ipv6Net::new(a, len).expect("level length ≤ 128 by construction"),
                    ),
                    label: self.index.label_at(idx),
                }),
            };
            if let Some(t0) = start {
                latency.record(t0.elapsed().as_nanos() as u64);
            }
            stats.matched += hit.is_some() as u64;
            out.push(hit);
        }
        (out, stats)
    }
}

/// Cache-fronted family lookup. Returns `(prefix_len, label_idx)`;
/// callers rebuild the matched net by re-masking the address, so the
/// cache never stores per-address data.
fn cached_lookup<K: PrefixKey>(
    top_len: Option<u8>,
    lpm: impl Fn(K) -> Option<(u8, u32)>,
    cache: &mut [CacheSlot<K>],
    addr: K,
    stats: &mut BatchStats,
) -> Option<(u8, u32)> {
    let Some(top_len) = top_len else {
        // No served prefixes in this family: the cache is never
        // consulted (there is nothing it could answer), so account the
        // lookup as `uncached` rather than inflating the miss counter
        // with lookups the cache never saw.
        stats.uncached += 1;
        return None;
    };
    let key = addr.and(K::mask(top_len));
    let slot = (key.cache_hash() >> 56) as usize % CACHE_SLOTS;
    if let Some((cached_key, result)) = cache[slot] {
        if cached_key == key {
            stats.cache_hits += 1;
            return result;
        }
    }
    stats.cache_misses += 1;
    let result = lpm(addr);
    cache[slot] = Some((key, result));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frozen::AsClass;
    use netaddr::Asn;

    fn engine_index() -> FrozenIndex {
        let mut b = FrozenIndex::builder();
        let label = |asn: u32| ServeLabel {
            asn: Asn(asn),
            class: AsClass::Dedicated,
        };
        b.insert_v4("10.0.0.0/8".parse().expect("cidr"), label(1));
        b.insert_v4("10.1.0.0/16".parse().expect("cidr"), label(2));
        b.insert_v4("203.0.113.0/24".parse().expect("cidr"), label(3));
        b.insert_v6("2001:db8::/48".parse().expect("cidr"), label(4));
        b.build()
    }

    #[test]
    fn ip_parsing_and_display_roundtrip() {
        assert_eq!(
            IpKey::parse("203.0.113.5").expect("v4"),
            IpKey::V4(0xCB007105)
        );
        assert_eq!(
            IpKey::parse("2001:db8::1").expect("v6"),
            IpKey::V6(0x2001_0db8_0000_0000_0000_0000_0000_0001)
        );
        assert_eq!(
            IpKey::parse("203.0.113.5").expect("v4").to_string(),
            "203.0.113.5"
        );
        for bad in ["", "notanip", "10.0.0.256", "2001:zz::1", "10.0.0.1/24"] {
            assert!(IpKey::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn batch_equals_per_item_lookups() {
        let index = engine_index();
        let engine = QueryEngine::new(&index);
        let queries: Vec<IpKey> = (0..3000u32)
            .map(|i| IpKey::V4(0x0A000000 + i * 0x1001))
            .chain((0..64).map(|i| IpKey::V6(0x2001_0db8_0000_0000_0000_0000_0000_0000 + i)))
            .collect();
        let (results, stats) = engine.run(&queries);
        assert_eq!(results.len(), queries.len());
        for (q, r) in queries.iter().zip(&results) {
            assert_eq!(*r, engine.lookup(*q), "batch diverges on {q}");
        }
        assert_eq!(stats.lookups, queries.len() as u64);
        assert_eq!(
            stats.cache_hits + stats.cache_misses + stats.uncached,
            stats.lookups
        );
        assert_eq!(stats.uncached, 0, "both families serve prefixes here");
        assert!(stats.matched > 0);
    }

    #[test]
    fn engine_over_a_mapped_view_matches_the_frozen_engine() {
        let index = engine_index();
        let bytes = crate::v2::encode(&index);
        let mapped = crate::v2::MappedIndex::new(&bytes).expect("valid v2 artifact");
        let queries: Vec<IpKey> = (0..(2 * QUERY_CHUNK as u32))
            .map(|i| {
                if i % 5 == 0 {
                    IpKey::V6(0x2001_0db8_0000_0000_0000_0000_0000_0000 + i as u128)
                } else {
                    IpKey::V4(i.wrapping_mul(0x0101_0101))
                }
            })
            .collect();
        let (frozen_results, frozen_stats) = QueryEngine::new(&index).run(&queries);
        let (mapped_results, mapped_stats) = QueryEngine::new(&mapped).run(&queries);
        assert_eq!(frozen_results, mapped_results);
        assert_eq!(
            frozen_stats, mapped_stats,
            "cache accounting must not depend on the representation"
        );
    }

    #[test]
    fn repeated_addresses_hit_the_cache() {
        let index = engine_index();
        let engine = QueryEngine::new(&index);
        let queries = vec![IpKey::V4(0xCB007105); 100];
        let (results, stats) = engine.run(&queries);
        assert!(results.iter().all(|r| r.is_some()));
        // One cold miss, 99 hits: all queries share one cache key and
        // fit in a single chunk.
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 99);
    }

    #[test]
    fn stats_are_reproducible_and_observed() {
        let index = engine_index();
        let queries: Vec<IpKey> = (0..5000u32).map(|i| IpKey::V4(i * 77777)).collect();
        let (r1, s1) = QueryEngine::new(&index).run(&queries);
        let (r2, s2) = QueryEngine::new(&index).run(&queries);
        assert_eq!(r1, r2);
        assert_eq!(s1, s2, "counters must not depend on scheduling");

        let obs = Observer::enabled();
        let engine = QueryEngine::new(&index).with_observer(obs.clone());
        let (_, stats) = engine.run(&queries);
        let snap = obs.snapshot();
        assert_eq!(snap.counters["serve.lookups"], stats.lookups);
        assert_eq!(snap.counters["serve.matched"], stats.matched);
        assert_eq!(snap.counters["serve.cache.hits"], stats.cache_hits);
        assert_eq!(snap.counters["serve.cache.misses"], stats.cache_misses);
        assert_eq!(snap.counters["serve.cache.uncached"], stats.uncached);
        assert!(snap.histograms.contains_key("serve.lookup.ns"));
    }

    /// Regression test for the per-chunk-mean bug: `serve.lookup.ns`
    /// used to record `elapsed / chunk.len()` once per chunk, so the
    /// histogram held one truncated mean per 1024 lookups and its tail
    /// percentiles were meaningless. The contract is now one sample per
    /// lookup, at any thread count.
    #[test]
    fn latency_histogram_has_one_sample_per_lookup() {
        let index = engine_index();
        // Span several chunks, mix hits/misses and both families.
        let queries: Vec<IpKey> = (0..(3 * QUERY_CHUNK as u32 + 17))
            .map(|i| {
                if i % 7 == 0 {
                    IpKey::V6(0x2001_0db8_0000_0000_0000_0000_0000_0000 + i as u128)
                } else {
                    IpKey::V4(i.wrapping_mul(0x9E37_79B9))
                }
            })
            .collect();
        for threads in [1usize, 4] {
            let obs = Observer::enabled();
            let engine = QueryEngine::new(&index).with_observer(obs.clone());
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("build rayon pool");
            let (results, stats) = pool.install(|| engine.run(&queries));
            assert_eq!(results.len(), queries.len());
            let snap = obs.snapshot();
            let hist = &snap.histograms["serve.lookup.ns"];
            assert_eq!(
                hist.count,
                queries.len() as u64,
                "one latency sample per lookup at {threads} thread(s)"
            );
            assert_eq!(hist.count, stats.lookups);
        }
    }

    #[test]
    fn empty_batch_and_empty_index_are_fine() {
        let index = engine_index();
        let (results, stats) = QueryEngine::new(&index).run(&[]);
        assert!(results.is_empty());
        assert_eq!(stats, BatchStats::default());

        let empty = FrozenIndex::builder().build();
        let queries = [IpKey::V4(1), IpKey::V6(2)];
        let (results, stats) = QueryEngine::new(&empty).run(&queries);
        assert!(results.iter().all(|r| r.is_none()));
        // Empty families never consult the cache: these are uncached
        // lookups, not cache misses.
        assert_eq!(stats.cache_misses, 0);
        assert_eq!(stats.uncached, 2);
        assert_eq!(stats.lookups, 2);
    }
}
