//! Error type for artifact decoding and query parsing.

use std::fmt;

/// Why a cellserve operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The artifact bytes failed integrity or structural validation:
    /// bad magic, broken seal (length or CRC-32 mismatch), truncated
    /// body, or an invariant violation (unsorted keys, out-of-range
    /// label index, non-canonical prefix key). The string names the
    /// first check that failed.
    Corrupt(String),
    /// The artifact was sealed with a format version this build cannot
    /// read.
    UnsupportedVersion(u32),
    /// A query address failed to parse as IPv4 or IPv6.
    BadAddress(String),
    /// Opening or reading an artifact file failed before any bytes
    /// could be validated. The string carries the OS error text.
    Io(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Corrupt(why) => write!(f, "corrupt artifact: {why}"),
            ServeError::UnsupportedVersion(v) => {
                write!(f, "unsupported artifact version {v}")
            }
            ServeError::BadAddress(s) => write!(f, "bad IP address {s:?}"),
            ServeError::Io(why) => write!(f, "artifact I/O error: {why}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(ServeError::Corrupt("CRC mismatch".into())
            .to_string()
            .contains("CRC mismatch"));
        assert!(ServeError::UnsupportedVersion(7).to_string().contains('7'));
        assert!(ServeError::BadAddress("nope".into())
            .to_string()
            .contains("nope"));
    }
}
