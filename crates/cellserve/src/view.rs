//! The unified read API over a serving index.
//!
//! [`IndexView`] is the borrowed trait every consumer of a loaded
//! artifact programs against: the owned [`FrozenIndex`](crate::FrozenIndex)
//! (decoded v1, still the form the build and delta paths manipulate),
//! the zero-copy [`MappedIndex`](crate::MappedIndex) over a v2 byte
//! buffer, and the owning [`ArtifactHandle`](crate::ArtifactHandle) all
//! implement it. The [`QueryEngine`](crate::QueryEngine),
//! `cellserved::Generation`, and the CELLDELT patch path are generic
//! over the view, so serving code never cares which representation
//! answered.
//!
//! The primitive surface is deliberately small — longest-prefix match
//! returning `(prefix_len, label_index)`, label-table access, and
//! canonical entry iteration — with the user-facing conveniences
//! (`lookup_v4`, `len`, `as_count`, …) derived from it, so a new
//! representation only has to get the primitives right.

use netaddr::{Ipv4Net, Ipv6Net};

use crate::frozen::ServeLabel;

/// A borrowed, immutable view of a serving index.
///
/// Implementors guarantee the canonical invariants the artifact formats
/// seal: per family the levels are longest-prefix-first, keys within a
/// level are masked and strictly ascending, and the label table is
/// deduplicated and sorted by `(asn, class)`. The derived methods rely
/// on those invariants.
pub trait IndexView: Sync {
    /// Longest-prefix match for an IPv4 address: `(prefix_len,
    /// label_index)` of the most specific served prefix covering it.
    fn lpm_v4(&self, addr: u32) -> Option<(u8, u32)>;

    /// Longest-prefix match for an IPv6 address.
    fn lpm_v6(&self, addr: u128) -> Option<(u8, u32)>;

    /// The label at a table index previously returned by a lookup.
    fn label_at(&self, idx: u32) -> ServeLabel;

    /// Longest served IPv4 prefix length, `None` when the family is
    /// empty — the mask the batch engine keys its hot cache on.
    fn longest_len_v4(&self) -> Option<u8>;

    /// Longest served IPv6 prefix length.
    fn longest_len_v6(&self) -> Option<u8>;

    /// `(IPv4, IPv6)` served-prefix counts.
    fn prefix_counts(&self) -> (usize, usize);

    /// Number of distinct labels in the table.
    fn label_count(&self) -> usize;

    /// Visit every served IPv4 prefix in canonical artifact order:
    /// shortest prefix length first, keys ascending within a length.
    fn for_each_v4(&self, f: &mut dyn FnMut(Ipv4Net, ServeLabel));

    /// Visit every served IPv6 prefix in canonical order.
    fn for_each_v6(&self, f: &mut dyn FnMut(Ipv6Net, ServeLabel));

    /// Hint that `addr` will be looked up shortly; zero-copy views
    /// prefetch the first probe's cache lines. No-op by default.
    #[inline]
    fn prefetch_v4(&self, _addr: u32) {}

    /// IPv6 counterpart of [`IndexView::prefetch_v4`].
    #[inline]
    fn prefetch_v6(&self, _addr: u128) {}

    /// Longest-prefix match returning the matched net and label.
    fn lookup_v4(&self, addr: u32) -> Option<(Ipv4Net, ServeLabel)> {
        let (len, idx) = self.lpm_v4(addr)?;
        let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
        let net = Ipv4Net::new(addr & mask, len).expect("validated length ≤ 32");
        Some((net, self.label_at(idx)))
    }

    /// Longest-prefix match returning the matched net and label.
    fn lookup_v6(&self, addr: u128) -> Option<(Ipv6Net, ServeLabel)> {
        let (len, idx) = self.lpm_v6(addr)?;
        let mask = if len == 0 { 0 } else { u128::MAX << (128 - len) };
        let net = Ipv6Net::new(addr & mask, len).expect("validated length ≤ 128");
        Some((net, self.label_at(idx)))
    }

    /// Total served prefixes across both families.
    fn len(&self) -> usize {
        let (v4, v6) = self.prefix_counts();
        v4 + v6
    }

    /// True when no prefix is served.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct origin ASes across the label table (labels
    /// are sorted by `(asn, class)`, so equal ASes are adjacent).
    fn as_count(&self) -> usize {
        let mut count = 0;
        let mut last = None;
        for i in 0..self.label_count() {
            let asn = self.label_at(i as u32).asn;
            if last != Some(asn) {
                count += 1;
                last = Some(asn);
            }
        }
        count
    }
}

macro_rules! delegate_index_view {
    ($($target:ty),* $(,)?) => {$(
        impl<V: IndexView + Send + Sync + ?Sized> IndexView for $target {
            fn lpm_v4(&self, addr: u32) -> Option<(u8, u32)> {
                (**self).lpm_v4(addr)
            }
            fn lpm_v6(&self, addr: u128) -> Option<(u8, u32)> {
                (**self).lpm_v6(addr)
            }
            fn label_at(&self, idx: u32) -> ServeLabel {
                (**self).label_at(idx)
            }
            fn longest_len_v4(&self) -> Option<u8> {
                (**self).longest_len_v4()
            }
            fn longest_len_v6(&self) -> Option<u8> {
                (**self).longest_len_v6()
            }
            fn prefix_counts(&self) -> (usize, usize) {
                (**self).prefix_counts()
            }
            fn label_count(&self) -> usize {
                (**self).label_count()
            }
            fn for_each_v4(&self, f: &mut dyn FnMut(Ipv4Net, ServeLabel)) {
                (**self).for_each_v4(f)
            }
            fn for_each_v6(&self, f: &mut dyn FnMut(Ipv6Net, ServeLabel)) {
                (**self).for_each_v6(f)
            }
            fn prefetch_v4(&self, addr: u32) {
                (**self).prefetch_v4(addr)
            }
            fn prefetch_v6(&self, addr: u128) {
                (**self).prefetch_v6(addr)
            }
        }
    )*};
}

delegate_index_view!(&V, std::sync::Arc<V>, Box<V>);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frozen::{AsClass, FrozenIndex};
    use netaddr::Asn;

    fn label(asn: u32, class: AsClass) -> ServeLabel {
        ServeLabel {
            asn: Asn(asn),
            class,
        }
    }

    #[test]
    fn derived_methods_agree_with_frozen_inherents() {
        let mut b = FrozenIndex::builder();
        b.insert_v4("10.0.0.0/8".parse().expect("cidr"), label(1, AsClass::Mixed));
        b.insert_v4(
            "10.1.0.0/16".parse().expect("cidr"),
            label(2, AsClass::Dedicated),
        );
        b.insert_v6(
            "2001:db8::/48".parse().expect("cidr"),
            label(3, AsClass::Unknown),
        );
        let idx = b.build();
        let view: &dyn IndexView = &idx;
        assert_eq!(view.len(), idx.len());
        assert_eq!(view.as_count(), idx.as_count());
        assert_eq!(view.prefix_counts(), idx.prefix_counts());
        assert_eq!(view.lookup_v4(0x0A010203), idx.lookup_v4(0x0A010203));
        assert_eq!(view.lookup_v4(0x0B000001), None);
        let addr = 0x2001_0db8_0000_0000_0000_0000_0000_0001u128;
        assert_eq!(view.lookup_v6(addr), idx.lookup_v6(addr));
        let mut seen = Vec::new();
        view.for_each_v4(&mut |net, l| seen.push((net, l)));
        assert_eq!(seen, idx.entries_v4().collect::<Vec<_>>());
    }
}
