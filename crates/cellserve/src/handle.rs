//! The unified artifact entry point: open a sealed file of either
//! format and get back something that serves lookups.
//!
//! [`Artifact::open`] sniffs the version, seal-checks, and returns an
//! [`ArtifactHandle`]: v2 files are `mmap`ed (Unix) or read once into
//! an 8-byte-aligned buffer and validated *in place* — cold start
//! copies nothing but a per-level offset table — while v1 files decode
//! into the owned [`FrozenIndex`] as before. The handle owns its bytes
//! and implements [`IndexView`](crate::IndexView), so the
//! [`QueryEngine`](crate::QueryEngine), the serving daemon, and the
//! delta path run identically over either representation.
//!
//! The handle also reports *how it booted* — [`ArtifactHandle::copied_bytes`]
//! is the measured cold-start copy cost that `bench_lookup` records as
//! `cold_start.bytes_copied` — and keeps the sealed bytes reachable
//! ([`ArtifactHandle::sealed_bytes`]) because CELLDELT deltas chain on
//! their content hash.

use std::fs::File;
use std::io::Read;
use std::path::Path;

use netaddr::{Ipv4Net, Ipv6Net};

use crate::artifact::{decode_v1, encode_v1, ARTIFACT_MAGIC, ARTIFACT_VERSION};
use crate::error::ServeError;
use crate::frozen::{FrozenIndex, ServeLabel};
use crate::hash::content_hash;
use crate::v2::{self, MappedIndex, V2Layout, ARTIFACT_V2_VERSION};
use crate::view::IndexView;

/// Which sealed encoding an artifact uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArtifactFormat {
    /// The original interleaved encoding, decoded into owned `Vec`s.
    V1,
    /// The 8-byte-aligned flat-array body served zero-copy (default).
    V2,
}

impl ArtifactFormat {
    /// Parse a CLI-style format name (`"v1"` / `"v2"`).
    pub fn parse(s: &str) -> Option<ArtifactFormat> {
        match s {
            "v1" | "1" => Some(ArtifactFormat::V1),
            "v2" | "2" => Some(ArtifactFormat::V2),
            _ => None,
        }
    }

    /// The version number sealed into the header.
    pub fn version(self) -> u32 {
        match self {
            ArtifactFormat::V1 => crate::artifact::ARTIFACT_VERSION,
            ArtifactFormat::V2 => ARTIFACT_V2_VERSION,
        }
    }
}

impl std::fmt::Display for ArtifactFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ArtifactFormat::V1 => "v1",
            ArtifactFormat::V2 => "v2",
        })
    }
}

/// Namespace for the artifact load/encode entry points.
pub struct Artifact;

impl Artifact {
    /// Open a sealed artifact file of either format.
    ///
    /// v2 files are `mmap`ed read-only where the platform allows
    /// (falling back to one read into an aligned buffer) and validated
    /// in place; v1 files are read and decoded. Either way the
    /// returned handle has passed the full seal + structural checks.
    ///
    /// # Errors
    /// [`ServeError::Io`] when the file cannot be read,
    /// [`ServeError::Corrupt`] / [`ServeError::UnsupportedVersion`] on
    /// validation failure.
    pub fn open(path: &Path) -> Result<ArtifactHandle, ServeError> {
        let io = |e: std::io::Error| ServeError::Io(format!("{}: {e}", path.display()));
        match Self::sniff_file(path).map_err(io)? {
            ARTIFACT_V2_VERSION => {
                #[cfg(unix)]
                {
                    let file = File::open(path).map_err(io)?;
                    let len = file.metadata().map_err(io)?.len() as usize;
                    if let Ok(map) = mm::Mmap::map(&file, len) {
                        let layout = v2::parse(map.as_slice())?;
                        let copied = (v2::HEADER_LEN + 32 * layout.level_count()) as u64;
                        let hash = content_hash(map.as_slice());
                        return Ok(ArtifactHandle {
                            repr: Repr::V2 {
                                buf: V2Buf::Mapped(map),
                                layout,
                            },
                            source_len: len as u64,
                            content_hash: hash,
                            copied_bytes: copied,
                            mapped: true,
                        });
                    }
                }
                let bytes = std::fs::read(path).map_err(io)?;
                Self::from_bytes(&bytes)
            }
            _ => {
                // v1 — and anything unrecognized, so the validators
                // produce their precise error.
                let bytes = std::fs::read(path).map_err(io)?;
                Self::from_bytes(&bytes)
            }
        }
    }

    /// Validate artifact bytes of either format into an owning handle
    /// (v2 bytes are copied once into an aligned buffer).
    ///
    /// # Errors
    /// [`ServeError::Corrupt`] or [`ServeError::UnsupportedVersion`].
    pub fn from_bytes(bytes: &[u8]) -> Result<ArtifactHandle, ServeError> {
        match Self::sniff_version(bytes) {
            Some(ARTIFACT_V2_VERSION) => {
                let buf = AlignedBytes::from_slice(bytes);
                let layout = v2::parse(buf.as_slice())?;
                Ok(ArtifactHandle {
                    repr: Repr::V2 {
                        buf: V2Buf::Owned(buf),
                        layout,
                    },
                    source_len: bytes.len() as u64,
                    content_hash: content_hash(bytes),
                    copied_bytes: bytes.len() as u64,
                    mapped: false,
                })
            }
            _ => {
                let index = decode_v1(bytes)?;
                let copied = bytes.len() as u64 + decoded_heap_bytes(&index);
                Ok(ArtifactHandle {
                    repr: Repr::V1 {
                        index,
                        bytes: bytes.to_vec(),
                    },
                    source_len: bytes.len() as u64,
                    content_hash: content_hash(bytes),
                    copied_bytes: copied,
                    mapped: false,
                })
            }
        }
    }

    /// Serialize an index into the requested sealed format.
    pub fn encode(index: &FrozenIndex, format: ArtifactFormat) -> Vec<u8> {
        match format {
            ArtifactFormat::V1 => encode_v1(index),
            ArtifactFormat::V2 => v2::encode(index),
        }
    }

    /// Decode sealed bytes of either format into the owned
    /// [`FrozenIndex`] form (the build, migrate, and delta paths).
    ///
    /// # Errors
    /// [`ServeError::Corrupt`] or [`ServeError::UnsupportedVersion`].
    pub fn decode(bytes: &[u8]) -> Result<FrozenIndex, ServeError> {
        match Self::sniff_version(bytes) {
            Some(ARTIFACT_V2_VERSION) => Ok(v2::parse(bytes)?.to_frozen(bytes)),
            _ => decode_v1(bytes),
        }
    }

    /// The sealed format version claimed by the (unvalidated) header,
    /// when the magic matches.
    pub fn sniff_version(bytes: &[u8]) -> Option<u32> {
        if bytes.len() < 12 || bytes[..8] != ARTIFACT_MAGIC {
            return None;
        }
        Some(u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")))
    }

    /// The sealed format claimed by the (unvalidated) header, when the
    /// magic matches and the version is one this build can serve.
    pub fn sniff_format(bytes: &[u8]) -> Option<ArtifactFormat> {
        match Self::sniff_version(bytes) {
            Some(ARTIFACT_VERSION) => Some(ArtifactFormat::V1),
            Some(ARTIFACT_V2_VERSION) => Some(ArtifactFormat::V2),
            _ => None,
        }
    }

    /// A cheap content fingerprint of an artifact file, for reload
    /// watchers: v2 files answer from the 64-byte header's
    /// `quick_hash` field without reading the body; other files hash
    /// their full contents. The value is *only* a change detector —
    /// nothing is validated here.
    ///
    /// # Errors
    /// [`ServeError::Io`] when the file cannot be read.
    pub fn quick_fingerprint(path: &Path) -> Result<u64, ServeError> {
        let io = |e: std::io::Error| ServeError::Io(format!("{}: {e}", path.display()));
        let mut file = File::open(path).map_err(io)?;
        let mut header = [0u8; v2::HEADER_LEN];
        let got = read_fully(&mut file, &mut header).map_err(io)?;
        if got >= 24
            && header[..8] == ARTIFACT_MAGIC
            && u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"))
                == ARTIFACT_V2_VERSION
        {
            return Ok(u64::from_le_bytes(
                header[16..24].try_into().expect("8 bytes"),
            ));
        }
        let mut rest = Vec::new();
        file.read_to_end(&mut rest).map_err(io)?;
        let mut all = header[..got].to_vec();
        all.extend_from_slice(&rest);
        Ok(content_hash(&all))
    }

    fn sniff_file(path: &Path) -> std::io::Result<u32> {
        let mut file = File::open(path)?;
        let mut head = [0u8; 12];
        let got = read_fully(&mut file, &mut head)?;
        if got == 12 && head[..8] == ARTIFACT_MAGIC {
            Ok(u32::from_le_bytes(head[8..12].try_into().expect("4 bytes")))
        } else {
            Ok(0)
        }
    }
}

fn read_fully(file: &mut File, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut got = 0;
    while got < buf.len() {
        let n = file.read(&mut buf[got..])?;
        if n == 0 {
            break;
        }
        got += n;
    }
    Ok(got)
}

/// Heap bytes a decoded [`FrozenIndex`] holds — the copy cost a v1
/// load pays on top of reading the file.
fn decoded_heap_bytes(index: &FrozenIndex) -> u64 {
    let (v4, v6) = index.prefix_counts();
    index.label_count() as u64 * std::mem::size_of::<ServeLabel>() as u64
        + v4 as u64 * (4 + 4)
        + v6 as u64 * (16 + 4)
}

/// A loaded, validated artifact: the owning counterpart of the
/// borrowed views. Serves lookups through [`IndexView`] (and inherent
/// mirrors of the common methods, so `Arc<ArtifactHandle>` call sites
/// need no trait import).
pub struct ArtifactHandle {
    repr: Repr,
    source_len: u64,
    content_hash: u64,
    copied_bytes: u64,
    mapped: bool,
}

impl std::fmt::Debug for ArtifactHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactHandle")
            .field("format", &self.format())
            .field("source_len", &self.source_len)
            .field("copied_bytes", &self.copied_bytes)
            .field("mapped", &self.mapped)
            .finish_non_exhaustive()
    }
}

enum Repr {
    V1 { index: FrozenIndex, bytes: Vec<u8> },
    V2 { buf: V2Buf, layout: V2Layout },
}

enum V2Buf {
    Owned(AlignedBytes),
    #[cfg(unix)]
    Mapped(mm::Mmap),
}

impl V2Buf {
    fn as_slice(&self) -> &[u8] {
        match self {
            V2Buf::Owned(b) => b.as_slice(),
            #[cfg(unix)]
            V2Buf::Mapped(m) => m.as_slice(),
        }
    }
}

impl ArtifactHandle {
    /// Which format the handle was loaded from.
    pub fn format(&self) -> ArtifactFormat {
        match &self.repr {
            Repr::V1 { .. } => ArtifactFormat::V1,
            Repr::V2 { .. } => ArtifactFormat::V2,
        }
    }

    /// The sealed bytes exactly as loaded — what delta chains hash.
    pub fn sealed_bytes(&self) -> &[u8] {
        match &self.repr {
            Repr::V1 { bytes, .. } => bytes,
            Repr::V2 { buf, .. } => buf.as_slice(),
        }
    }

    /// FNV-1a content hash of [`ArtifactHandle::sealed_bytes`].
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// Sealed file size in bytes.
    pub fn source_len(&self) -> u64 {
        self.source_len
    }

    /// Bytes materialized in memory to boot this handle: a v1 load
    /// pays the file read plus the decoded structure; a v2 mmap pays
    /// only the header and per-level offset table.
    pub fn copied_bytes(&self) -> u64 {
        self.copied_bytes
    }

    /// True when the handle serves straight out of an `mmap`.
    pub fn is_mapped(&self) -> bool {
        self.mapped
    }

    /// Decode into the owned [`FrozenIndex`] form (v1: clone; v2:
    /// in-order decode) — the delta-apply and migrate paths.
    pub fn to_frozen(&self) -> FrozenIndex {
        match &self.repr {
            Repr::V1 { index, .. } => index.clone(),
            Repr::V2 { buf, layout } => layout.to_frozen(buf.as_slice()),
        }
    }

    /// Borrow the zero-copy v2 view, when this is a v2 handle.
    pub fn as_mapped(&self) -> Option<MappedIndex<'_>> {
        match &self.repr {
            Repr::V1 { .. } => None,
            Repr::V2 { buf, .. } => MappedIndex::new(buf.as_slice()).ok(),
        }
    }

    /// Inherent mirror of [`IndexView::lookup_v4`].
    pub fn lookup_v4(&self, addr: u32) -> Option<(Ipv4Net, ServeLabel)> {
        IndexView::lookup_v4(self, addr)
    }

    /// Inherent mirror of [`IndexView::lookup_v6`].
    pub fn lookup_v6(&self, addr: u128) -> Option<(Ipv6Net, ServeLabel)> {
        IndexView::lookup_v6(self, addr)
    }

    /// Inherent mirror of [`IndexView::prefix_counts`].
    pub fn prefix_counts(&self) -> (usize, usize) {
        IndexView::prefix_counts(self)
    }

    /// Inherent mirror of [`IndexView::len`].
    pub fn len(&self) -> usize {
        IndexView::len(self)
    }

    /// Inherent mirror of [`IndexView::is_empty`].
    pub fn is_empty(&self) -> bool {
        IndexView::is_empty(self)
    }

    /// Inherent mirror of [`IndexView::label_count`].
    pub fn label_count(&self) -> usize {
        IndexView::label_count(self)
    }

    /// Inherent mirror of [`IndexView::as_count`].
    pub fn as_count(&self) -> usize {
        IndexView::as_count(self)
    }
}

impl IndexView for ArtifactHandle {
    fn lpm_v4(&self, addr: u32) -> Option<(u8, u32)> {
        match &self.repr {
            Repr::V1 { index, .. } => index.lpm_v4(addr),
            Repr::V2 { buf, layout } => layout.lpm_v4(buf.as_slice(), addr),
        }
    }

    fn lpm_v6(&self, addr: u128) -> Option<(u8, u32)> {
        match &self.repr {
            Repr::V1 { index, .. } => index.lpm_v6(addr),
            Repr::V2 { buf, layout } => layout.lpm_v6(buf.as_slice(), addr),
        }
    }

    fn label_at(&self, idx: u32) -> ServeLabel {
        match &self.repr {
            Repr::V1 { index, .. } => index.label_at(idx),
            Repr::V2 { buf, layout } => layout.label_at(buf.as_slice(), idx),
        }
    }

    fn longest_len_v4(&self) -> Option<u8> {
        match &self.repr {
            Repr::V1 { index, .. } => index.longest_len_v4(),
            Repr::V2 { layout, .. } => layout.longest_len_v4(),
        }
    }

    fn longest_len_v6(&self) -> Option<u8> {
        match &self.repr {
            Repr::V1 { index, .. } => index.longest_len_v6(),
            Repr::V2 { layout, .. } => layout.longest_len_v6(),
        }
    }

    fn prefix_counts(&self) -> (usize, usize) {
        match &self.repr {
            Repr::V1 { index, .. } => IndexView::prefix_counts(index),
            Repr::V2 { layout, .. } => layout.prefix_counts(),
        }
    }

    fn label_count(&self) -> usize {
        match &self.repr {
            Repr::V1 { index, .. } => IndexView::label_count(index),
            Repr::V2 { layout, .. } => layout.label_count(),
        }
    }

    fn for_each_v4(&self, f: &mut dyn FnMut(Ipv4Net, ServeLabel)) {
        match &self.repr {
            Repr::V1 { index, .. } => index.for_each_v4(f),
            Repr::V2 { buf, layout } => layout.for_each_v4(buf.as_slice(), f),
        }
    }

    fn for_each_v6(&self, f: &mut dyn FnMut(Ipv6Net, ServeLabel)) {
        match &self.repr {
            Repr::V1 { index, .. } => index.for_each_v6(f),
            Repr::V2 { buf, layout } => layout.for_each_v6(buf.as_slice(), f),
        }
    }

    fn prefetch_v4(&self, addr: u32) {
        if let Repr::V2 { buf, layout } = &self.repr {
            layout.prefetch_v4(buf.as_slice(), addr);
        }
    }

    fn prefetch_v6(&self, addr: u128) {
        if let Repr::V2 { buf, layout } = &self.repr {
            layout.prefetch_v6(buf.as_slice(), addr);
        }
    }
}

/// One read's worth of bytes at 8-byte alignment: a `Vec<u64>` backing
/// store reinterpreted as bytes, the mmap fallback the v2 spec allows.
struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    fn from_slice(bytes: &[u8]) -> AlignedBytes {
        let mut words = vec![0u64; bytes.len().div_ceil(8)];
        for (i, chunk) in bytes.chunks(8).enumerate() {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            words[i] = u64::from_ne_bytes(w);
        }
        AlignedBytes {
            words,
            len: bytes.len(),
        }
    }

    fn as_slice(&self) -> &[u8] {
        // SAFETY: the words buffer holds ≥ `len` initialized bytes and
        // u64 → u8 loosens alignment; `from_ne_bytes` above preserved
        // the original byte order.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }
}

/// Minimal read-only mmap over a file, done with direct libc calls so
/// no new dependency is needed (same std-only idiom as the CLI's
/// signal handling). The mapping outlives the `File`; artifacts are
/// published with atomic renames, so the mapped inode can never be
/// truncated under us.
#[cfg(unix)]
mod mm {
    use core::ffi::c_void;
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    pub(super) struct Mmap {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ and never mutated.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        pub(super) fn map(file: &std::fs::File, len: usize) -> std::io::Result<Mmap> {
            if len == 0 {
                return Err(std::io::Error::other("cannot map an empty file"));
            }
            // SAFETY: fd is valid for the duration of the call; we map
            // read-only/private and check the sentinel return.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Mmap {
                ptr: ptr as *const u8,
                len,
            })
        }

        pub(super) fn as_slice(&self) -> &[u8] {
            // SAFETY: the mapping covers `len` readable bytes for the
            // life of `self`.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` are exactly what mmap returned.
            unsafe {
                munmap(self.ptr as *mut c_void, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frozen::AsClass;
    use netaddr::Asn;

    fn sample_index() -> FrozenIndex {
        let mut b = FrozenIndex::builder();
        b.insert_v4(
            "10.0.0.0/8".parse().expect("cidr"),
            ServeLabel {
                asn: Asn(1),
                class: AsClass::Mixed,
            },
        );
        b.insert_v6(
            "2001:db8::/48".parse().expect("cidr"),
            ServeLabel {
                asn: Asn(2),
                class: AsClass::Dedicated,
            },
        );
        b.build()
    }

    fn tmpfile(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cellserve-handle-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join(name);
        std::fs::write(&path, bytes).expect("write artifact");
        path
    }

    #[test]
    fn open_sniffs_both_formats_and_answers_identically() {
        let index = sample_index();
        for format in [ArtifactFormat::V1, ArtifactFormat::V2] {
            let bytes = Artifact::encode(&index, format);
            let path = tmpfile(&format!("open-{format}.cellserv"), &bytes);
            let handle = Artifact::open(&path).expect("open");
            assert_eq!(handle.format(), format);
            assert_eq!(handle.sealed_bytes(), &bytes[..]);
            assert_eq!(handle.content_hash(), content_hash(&bytes));
            assert_eq!(handle.source_len(), bytes.len() as u64);
            assert_eq!(handle.lookup_v4(0x0A000001), index.lookup_v4(0x0A000001));
            assert_eq!(handle.lookup_v4(0x0B000001), None);
            let v6 = 0x2001_0db8_0000_0000_0000_0000_0000_0001u128;
            assert_eq!(handle.lookup_v6(v6), index.lookup_v6(v6));
            assert_eq!(handle.prefix_counts(), index.prefix_counts());
            assert_eq!(handle.to_frozen(), index);
        }
    }

    #[test]
    fn v2_open_maps_and_copies_almost_nothing() {
        let bytes = Artifact::encode(&sample_index(), ArtifactFormat::V2);
        let path = tmpfile("mapped.cellserv", &bytes);
        let handle = Artifact::open(&path).expect("open");
        if cfg!(unix) {
            assert!(handle.is_mapped(), "v2 files mmap on unix");
            assert!(
                handle.copied_bytes() < bytes.len() as u64,
                "mapped boot copies less than the file: {} vs {}",
                handle.copied_bytes(),
                bytes.len()
            );
        }
        assert!(handle.as_mapped().is_some());
    }

    #[test]
    fn v1_load_pays_the_decode_copy() {
        let bytes = Artifact::encode(&sample_index(), ArtifactFormat::V1);
        let handle = Artifact::from_bytes(&bytes).expect("load");
        assert!(!handle.is_mapped());
        assert!(handle.copied_bytes() > bytes.len() as u64);
        assert!(handle.as_mapped().is_none());
    }

    #[test]
    fn decode_and_encode_roundtrip_across_formats() {
        let index = sample_index();
        let v1 = Artifact::encode(&index, ArtifactFormat::V1);
        let v2 = Artifact::encode(&index, ArtifactFormat::V2);
        assert_eq!(Artifact::decode(&v1).expect("v1"), index);
        assert_eq!(Artifact::decode(&v2).expect("v2"), index);
        assert_eq!(Artifact::sniff_version(&v1), Some(1));
        assert_eq!(Artifact::sniff_version(&v2), Some(2));
        assert_eq!(Artifact::sniff_version(b"nope"), None);
    }

    #[test]
    fn quick_fingerprint_matches_header_and_tracks_content() {
        let index = sample_index();
        let v2 = Artifact::encode(&index, ArtifactFormat::V2);
        let path = tmpfile("fp.cellserv", &v2);
        let fp = Artifact::quick_fingerprint(&path).expect("fingerprint");
        let handle = Artifact::open(&path).expect("open");
        let mapped = handle.as_mapped().expect("v2 view");
        assert_eq!(fp, mapped.quick_hash());

        // v1 files fall back to a full-content hash.
        let v1 = Artifact::encode(&index, ArtifactFormat::V1);
        let p1 = tmpfile("fp-v1.cellserv", &v1);
        assert_eq!(
            Artifact::quick_fingerprint(&p1).expect("fingerprint"),
            content_hash(&v1)
        );

        // Different contents, different fingerprints.
        let mut b = FrozenIndex::builder();
        b.insert_v4(
            "192.0.2.0/24".parse().expect("cidr"),
            ServeLabel {
                asn: Asn(9),
                class: AsClass::Unknown,
            },
        );
        let other = Artifact::encode(&b.build(), ArtifactFormat::V2);
        let p2 = tmpfile("fp-other.cellserv", &other);
        assert_ne!(fp, Artifact::quick_fingerprint(&p2).expect("fingerprint"));
    }

    #[test]
    fn open_missing_file_is_an_io_error() {
        let err = Artifact::open(Path::new("/nonexistent/cellserv")).expect_err("no file");
        assert!(matches!(err, ServeError::Io(_)), "{err:?}");
    }

    #[test]
    fn corrupt_files_are_rejected_through_open() {
        for format in [ArtifactFormat::V1, ArtifactFormat::V2] {
            let mut bytes = Artifact::encode(&sample_index(), format);
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
            let path = tmpfile(&format!("bad-{format}.cellserv"), &bytes);
            assert!(Artifact::open(&path).is_err(), "{format} corruption accepted");
        }
    }
}
