//! # cellserve — frozen classification artifact + lookup engine
//!
//! The paper's methodology ends with a *classification*: the set of
//! /24 and /48 blocks labeled cellular, each with its origin AS. Every
//! operational consumer of that result — traffic steering, analytics
//! enrichment, abuse triage — asks the same question at high volume:
//! *given an IP address, is it cellular, and under which operator?*
//! This crate is that serving layer:
//!
//! * **Sealed artifact** — [`Artifact::encode`]/[`Artifact::open`]
//!   snapshot a classification into a compact, versioned binary format
//!   sealed with the same CRC-32 the streaming checkpoints use
//!   ([`cellstream::crc32`]); any single-byte corruption is rejected
//!   at load, never served. Two formats coexist: the original
//!   interleaved **v1**, and the 8-byte-aligned flat-array **v2**
//!   (default) whose body validates *in place*, so a v2 file is
//!   `mmap`ed and served with near-zero cold-start copies.
//! * **[`IndexView`]** — the borrowed read API every consumer programs
//!   against. The owned [`FrozenIndex`] (decoded v1, still what the
//!   build and delta paths manipulate), the zero-copy [`MappedIndex`]
//!   over v2 bytes, and the owning [`ArtifactHandle`] all implement
//!   it, provably answer-identical (pinned by the equivalence property
//!   suites in `tests/frozen_props.rs` and `tests/format_props.rs`)
//!   and the same answers as [`netaddr::PrefixTrie`].
//! * **[`QueryEngine`]** — batch lookups over any [`IndexView`] fan
//!   out over rayon in fixed-size chunks, each fronted by a small
//!   hot-block cache whose hit/miss counters are deterministic at any
//!   thread count; an attached [`Observer`](cellobs::Observer)
//!   collects `serve.*` counters and a lookup-latency histogram.
//!
//! The `cellspot index build --format {v1,v2}`, `cellspot index
//! migrate`, and `cellspot lookup` CLI subcommands wrap this crate,
//! and `bench_lookup` measures v1-vs-v2 cold-start copies and lookup
//! throughput in the same run.
//!
//! ## Quick tour
//!
//! ```
//! use cellserve::{Artifact, ArtifactFormat, AsClass, FrozenIndex, ServeLabel};
//! use netaddr::{Asn, Ipv4Net};
//!
//! let mut builder = FrozenIndex::builder();
//! builder.insert_v4(
//!     "203.0.113.0/24".parse::<Ipv4Net>().unwrap(),
//!     ServeLabel { asn: Asn(7), class: AsClass::Dedicated },
//! );
//! let index = builder.build();
//!
//! // Seal to bytes; loading verifies the seal before serving anything.
//! let bytes = Artifact::encode(&index, ArtifactFormat::V2);
//! let loaded = Artifact::from_bytes(&bytes).unwrap();
//! let (net, label) = loaded.lookup_v4(0xCB007105).unwrap(); // 203.0.113.5
//! assert_eq!(net.to_string(), "203.0.113.0/24");
//! assert_eq!(label.asn, Asn(7));
//! ```

mod artifact;
mod engine;
mod error;
mod frozen;
mod handle;
mod hash;
mod v2;
mod view;

#[allow(deprecated)]
pub use artifact::{from_bytes, to_bytes};
pub use artifact::{ARTIFACT_MAGIC, ARTIFACT_VERSION};
pub use engine::{BatchStats, IpKey, LookupMatch, MatchedPrefix, QueryEngine, QUERY_CHUNK};
pub use error::ServeError;
pub use frozen::{AsClass, FrozenIndex, FrozenIndexBuilder, ServeLabel};
pub use handle::{Artifact, ArtifactFormat, ArtifactHandle};
pub use hash::{content_hash, hash_hex};
pub use v2::{MappedIndex, ARTIFACT_V2_VERSION};
pub use view::IndexView;

/// The serving surface in one import: everything needed to load an
/// artifact and answer lookups, without the build-side types.
pub mod prelude {
    pub use crate::engine::{IpKey, LookupMatch, QueryEngine};
    pub use crate::frozen::{AsClass, ServeLabel};
    pub use crate::handle::{Artifact, ArtifactFormat, ArtifactHandle};
    pub use crate::view::IndexView;
}
