//! # cellserve — frozen classification artifact + lookup engine
//!
//! The paper's methodology ends with a *classification*: the set of
//! /24 and /48 blocks labeled cellular, each with its origin AS. Every
//! operational consumer of that result — traffic steering, analytics
//! enrichment, abuse triage — asks the same question at high volume:
//! *given an IP address, is it cellular, and under which operator?*
//! This crate is that serving layer:
//!
//! * **Sealed artifact** — [`to_bytes`]/[`from_bytes`] snapshot a
//!   classification into a compact, versioned binary format sealed
//!   with the same CRC-32 the streaming checkpoints use
//!   ([`cellstream::crc32`]); any single-byte corruption is rejected
//!   at load, never served.
//! * **[`FrozenIndex`]** — the artifact loads into an immutable
//!   longest-prefix-match structure: per family, per prefix length,
//!   flat sorted key arrays probed with a branch-free binary search.
//!   No pointer chasing, no allocation per lookup, and provably the
//!   same answers as [`netaddr::PrefixTrie`] (pinned by the
//!   equivalence property suite in `tests/frozen_props.rs`).
//! * **[`QueryEngine`]** — batch lookups fan out over rayon in
//!   fixed-size chunks, each fronted by a small hot-block cache whose
//!   hit/miss counters are deterministic at any thread count; an
//!   attached [`Observer`](cellobs::Observer) collects `serve.*`
//!   counters and a lookup-latency histogram.
//!
//! The `cellspot index build` and `cellspot lookup` CLI subcommands
//! wrap this crate, and `bench_lookup` measures its single- vs
//! multi-threaded throughput.
//!
//! ## Quick tour
//!
//! ```
//! use cellserve::{AsClass, FrozenIndex, ServeLabel};
//! use netaddr::{Asn, Ipv4Net};
//!
//! let mut builder = FrozenIndex::builder();
//! builder.insert_v4(
//!     "203.0.113.0/24".parse::<Ipv4Net>().unwrap(),
//!     ServeLabel { asn: Asn(7), class: AsClass::Dedicated },
//! );
//! let index = builder.build();
//!
//! // Seal to bytes; loading verifies the seal before serving anything.
//! let bytes = cellserve::to_bytes(&index);
//! let loaded = cellserve::from_bytes(&bytes).unwrap();
//! let (net, label) = loaded.lookup_v4(0xCB007105).unwrap(); // 203.0.113.5
//! assert_eq!(net.to_string(), "203.0.113.0/24");
//! assert_eq!(label.asn, Asn(7));
//! ```

mod artifact;
mod engine;
mod error;
mod frozen;
mod hash;

pub use artifact::{from_bytes, to_bytes, ARTIFACT_MAGIC, ARTIFACT_VERSION};
pub use engine::{BatchStats, IpKey, LookupMatch, MatchedPrefix, QueryEngine, QUERY_CHUNK};
pub use error::ServeError;
pub use frozen::{AsClass, FrozenIndex, FrozenIndexBuilder, ServeLabel};
pub use hash::{content_hash, hash_hex};
