//! CELLSERV v2: the directly-mappable artifact body.
//!
//! Where v1 interleaves variable-size records that must be copied into
//! owned `Vec`s, v2 lays the index out as 8-byte-aligned little-endian
//! flat arrays with a fixed header of offsets, so a loaded file (mmap
//! or one read into an aligned buffer) validates *in place* and serves
//! lookups with near-zero copies:
//!
//! ```text
//! header (64 bytes):
//!   magic          8   "CELLSERV"
//!   version        u32  2
//!   header_len     u32  64
//!   quick_hash     u64  FNV-1a of bytes [64, body_len) — the cheap
//!                       content fingerprint reload watchers read
//!   label_count    u32
//!   v4_levels      u32
//!   v6_levels      u32
//!   reserved       u32  0
//!   labels_off     u64  64
//!   dir_off        u64
//!   body_len       u64  duplicate of the trailer field
//! labels:          label_count × { asn: u32, class: u32 }
//! directory:       (v4_levels + v6_levels) × 32 bytes, v4 levels
//!                  first, longest prefix first within a family:
//!   family         u8   4 or 6
//!   prefix_len     u8
//!   layout         u8   0 = Eytzinger, 1 = sorted + /16 root table
//!   pad            u8   0
//!   entry_count    u32  nonzero
//!   keys_off       u64  key array (entry_count × key size)
//!   labels_off     u64  label-index array (entry_count × u32)
//!   aux_off        u64  root table for layout 1, else 0
//! data sections:   per level in directory order: keys, label indexes,
//!                  aux — each zero-padded to the next 8-byte boundary
//! trailer (16 bytes, shared with v1):
//!   body_len       u64
//!   crc32          u32  CRC-32 (IEEE) of the body
//!   magic          4   "CSRV"
//! ```
//!
//! **Inner-loop layouts.** Every level except the hot one stores its
//! keys in Eytzinger (BFS) order: the binary search becomes a
//! branchless descent `k = 2k + (keys[k-1] < target)` whose first few
//! probes share cache lines, with a software prefetch 4 levels ahead.
//! The longest IPv4 level — the /24s that dominate the paper's serving
//! workload — keeps its keys sorted and, once it is at least
//! [`ROOT_TABLE_MIN`] entries, prepends a 2^16+1-entry cumulative
//! table indexed by the address's top 16 bits, so a lookup lands
//! directly in its /16 stem's run and binary-searches only that.
//!
//! **In-place validation contract.** [`parse`] accepts a byte slice
//! and proves, without building any owned structure beyond a per-level
//! offset table: the seal (trailer magic, length, CRC over the whole
//! body), the header invariants, that every section offset equals the
//! canonical packing (which also rules out overlap), that every key is
//! masked to its level's length and strictly ascending in logical
//! (in-order) position, that the root table is exactly the cumulative
//! /16 histogram of its keys, and that every label index and class
//! byte is in range. Encoding is canonical — the same index always
//! produces byte-identical files — so `encode(decode(b)) == b` and any
//! single-byte corruption is rejected.

use crate::error::ServeError;
use crate::frozen::{AsClass, FamilyIndex, FrozenIndex, Level, PrefixKey, ServeLabel};
use crate::hash::content_hash;
use netaddr::{Asn, Ipv4Net, Ipv6Net};

/// Format version sealed into v2 headers.
pub const ARTIFACT_V2_VERSION: u32 = 2;

/// Fixed v2 header size.
pub(crate) const HEADER_LEN: usize = 64;

/// Trailer size shared with v1: body length (8) + CRC-32 (4) + magic.
const TRAILER_LEN: usize = 16;

/// Trailing magic closing the seal (same as v1).
const TRAILER_MAGIC: [u8; 4] = *b"CSRV";

/// Keys stored in Eytzinger (BFS) order.
const LAYOUT_EYTZINGER: u8 = 0;

/// Keys sorted ascending with a /16 root table in the aux section.
const LAYOUT_ROOT16: u8 = 1;

/// Minimum entry count before the longest IPv4 level pays for a
/// 256 KiB root table.
pub(crate) const ROOT_TABLE_MIN: usize = 4096;

/// Root-table entries: one cumulative count per /16 stem, plus the
/// closing total.
const ROOT_ENTRIES: usize = (1 << 16) + 1;

/// During the Eytzinger descent at node `k`, prefetch the subtree
/// `PREFETCH_AHEAD` levels down (`k << 4`), so the line is resident by
/// the time the walk reaches it.
const PREFETCH_AHEAD: usize = 4;

fn corrupt(why: impl Into<String>) -> ServeError {
    ServeError::Corrupt(why.into())
}

#[inline]
fn align8(n: usize) -> usize {
    (n + 7) & !7
}

#[inline]
fn prefetch(buf: &[u8], off: usize) {
    #[cfg(target_arch = "x86_64")]
    if off < buf.len() {
        // SAFETY: `off` is in bounds; prefetch has no memory effects.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(buf.as_ptr().add(off) as *const i8, _MM_HINT_T0);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (buf, off);
}

#[inline]
fn read_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes"))
}

#[inline]
fn read_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().expect("8 bytes"))
}

#[inline]
fn key_at<K: PrefixKey>(buf: &[u8], keys_off: usize, i: usize) -> K {
    K::read_le(&buf[keys_off + i * K::SIZE..keys_off + (i + 1) * K::SIZE])
}

/// One level's location inside the buffer — the only owned state a
/// mapped index keeps per level.
#[derive(Clone, Copy, Debug)]
struct LevelRef {
    len: u8,
    layout: u8,
    count: usize,
    keys_off: usize,
    labels_off: usize,
    aux_off: usize,
}

/// Validated offsets of every section: the parse result that, together
/// with the raw bytes, answers lookups.
#[derive(Clone, Debug)]
pub(crate) struct V2Layout {
    label_count: usize,
    labels_off: usize,
    v4: Vec<LevelRef>,
    v6: Vec<LevelRef>,
    quick_hash: u64,
}

impl V2Layout {
    pub(crate) fn quick_hash(&self) -> u64 {
        self.quick_hash
    }

    pub(crate) fn label_at(&self, buf: &[u8], idx: u32) -> ServeLabel {
        let off = self.labels_off + idx as usize * 8;
        let asn = Asn(read_u32(buf, off));
        let class = AsClass::from_byte(read_u32(buf, off + 4) as u8)
            .expect("class validated at parse time");
        ServeLabel { asn, class }
    }

    pub(crate) fn label_count(&self) -> usize {
        self.label_count
    }

    pub(crate) fn level_count(&self) -> usize {
        self.v4.len() + self.v6.len()
    }

    pub(crate) fn prefix_counts(&self) -> (usize, usize) {
        let sum = |levels: &[LevelRef]| levels.iter().map(|l| l.count).sum();
        (sum(&self.v4), sum(&self.v6))
    }

    pub(crate) fn longest_len_v4(&self) -> Option<u8> {
        self.v4.first().map(|l| l.len)
    }

    pub(crate) fn longest_len_v6(&self) -> Option<u8> {
        self.v6.first().map(|l| l.len)
    }

    pub(crate) fn lpm_v4(&self, buf: &[u8], addr: u32) -> Option<(u8, u32)> {
        lpm(buf, &self.v4, addr)
    }

    pub(crate) fn lpm_v6(&self, buf: &[u8], addr: u128) -> Option<(u8, u32)> {
        lpm(buf, &self.v6, addr)
    }

    pub(crate) fn prefetch_v4(&self, buf: &[u8], addr: u32) {
        if let Some(level) = self.v4.first() {
            let masked = addr.and(u32::mask(level.len));
            if level.layout == LAYOUT_ROOT16 {
                prefetch(buf, level.aux_off + (masked >> 16) as usize * 4);
            } else {
                prefetch(buf, level.keys_off);
            }
        }
    }

    pub(crate) fn prefetch_v6(&self, buf: &[u8], _addr: u128) {
        if let Some(level) = self.v6.first() {
            prefetch(buf, level.keys_off);
        }
    }

    pub(crate) fn for_each_v4(&self, buf: &[u8], f: &mut dyn FnMut(Ipv4Net, ServeLabel)) {
        for level in self.v4.iter().rev() {
            visit_in_order::<u32>(buf, level, &mut |key, idx| {
                let net = Ipv4Net::new(key, level.len).expect("validated length ≤ 32");
                f(net, self.label_at(buf, idx));
            });
        }
    }

    pub(crate) fn for_each_v6(&self, buf: &[u8], f: &mut dyn FnMut(Ipv6Net, ServeLabel)) {
        for level in self.v6.iter().rev() {
            visit_in_order::<u128>(buf, level, &mut |key, idx| {
                let net = Ipv6Net::new(key, level.len).expect("validated length ≤ 128");
                f(net, self.label_at(buf, idx));
            });
        }
    }

    /// Decode into an owned [`FrozenIndex`] — the `index migrate` and
    /// delta-apply paths, which need the mutable in-memory form.
    pub(crate) fn to_frozen(&self, buf: &[u8]) -> FrozenIndex {
        let labels: Vec<ServeLabel> = (0..self.label_count)
            .map(|i| self.label_at(buf, i as u32))
            .collect();
        let family = |levels: &[LevelRef]| FamilyIndex::<u32> {
            levels: levels
                .iter()
                .map(|level| {
                    let mut keys = Vec::with_capacity(level.count);
                    let mut idxs = Vec::with_capacity(level.count);
                    visit_in_order::<u32>(buf, level, &mut |key, idx| {
                        keys.push(key);
                        idxs.push(idx);
                    });
                    Level {
                        len: level.len,
                        keys,
                        labels: idxs,
                    }
                })
                .collect(),
        };
        let v4 = family(&self.v4);
        let v6 = FamilyIndex::<u128> {
            levels: self
                .v6
                .iter()
                .map(|level| {
                    let mut keys = Vec::with_capacity(level.count);
                    let mut idxs = Vec::with_capacity(level.count);
                    visit_in_order::<u128>(buf, level, &mut |key, idx| {
                        keys.push(key);
                        idxs.push(idx);
                    });
                    Level {
                        len: level.len,
                        keys,
                        labels: idxs,
                    }
                })
                .collect(),
        };
        FrozenIndex { labels, v4, v6 }
    }

    /// Decoded in-memory footprint of the owned form — what a v1-style
    /// load would have copied on top of the file read.
    pub(crate) fn decoded_bytes(&self) -> u64 {
        let per_level = |levels: &[LevelRef], key_size: usize| -> u64 {
            levels
                .iter()
                .map(|l| (l.count * (key_size + 4)) as u64)
                .sum()
        };
        self.label_count as u64 * std::mem::size_of::<ServeLabel>() as u64
            + per_level(&self.v4, 4)
            + per_level(&self.v6, 16)
    }
}

/// Walk a level's entries in ascending-key order, whatever its
/// physical layout, yielding `(key, label_index)` pairs.
fn visit_in_order<K: PrefixKey>(buf: &[u8], level: &LevelRef, f: &mut dyn FnMut(K, u32)) {
    if level.layout == LAYOUT_ROOT16 {
        for i in 0..level.count {
            f(
                key_at::<K>(buf, level.keys_off, i),
                read_u32(buf, level.labels_off + i * 4),
            );
        }
    } else {
        in_order_eytzinger::<K>(buf, level, 1, f);
    }
}

/// Recursive in-order traversal of the implicit Eytzinger tree
/// (1-indexed node `k`); depth is `log2(count)` ≤ 32.
fn in_order_eytzinger<K: PrefixKey>(
    buf: &[u8],
    level: &LevelRef,
    k: usize,
    f: &mut dyn FnMut(K, u32),
) {
    if k > level.count {
        return;
    }
    in_order_eytzinger::<K>(buf, level, 2 * k, f);
    f(
        key_at::<K>(buf, level.keys_off, k - 1),
        read_u32(buf, level.labels_off + (k - 1) * 4),
    );
    in_order_eytzinger::<K>(buf, level, 2 * k + 1, f);
}

/// Branchless Eytzinger exact-match search: descend `k = 2k + (key <
/// target)`, then peel trailing ones to recover the lower bound.
/// Returns the *physical* (Eytzinger) position, whose label sits at the
/// same position in the label array.
#[inline]
fn eytzinger_search<K: PrefixKey>(buf: &[u8], level: &LevelRef, target: K) -> Option<usize> {
    let n = level.count;
    let mut k = 1usize;
    while k <= n {
        prefetch(buf, level.keys_off + ((k << PREFETCH_AHEAD).min(n)) * K::SIZE);
        let key = key_at::<K>(buf, level.keys_off, k - 1);
        k = 2 * k + usize::from(key < target);
    }
    k >>= k.trailing_ones() + 1;
    if k == 0 {
        return None;
    }
    (key_at::<K>(buf, level.keys_off, k - 1) == target).then_some(k - 1)
}

/// Branchless binary search over a sorted key range (the within-stem
/// search of a root-table level). Returns the position relative to the
/// full key array.
#[inline]
fn sorted_range_search<K: PrefixKey>(
    buf: &[u8],
    keys_off: usize,
    lo: usize,
    hi: usize,
    target: K,
) -> Option<usize> {
    if lo >= hi {
        return None;
    }
    let mut base = lo;
    let mut size = hi - lo;
    while size > 1 {
        let half = size / 2;
        let probe = base + half;
        prefetch(buf, keys_off + (probe + half / 2) * K::SIZE);
        base = if key_at::<K>(buf, keys_off, probe) <= target {
            probe
        } else {
            base
        };
        size -= half;
    }
    (key_at::<K>(buf, keys_off, base) == target).then_some(base)
}

/// Exact-match probe of one level for an already-masked key.
#[inline]
fn level_find<K: PrefixKey>(buf: &[u8], level: &LevelRef, masked: K) -> Option<usize> {
    if level.layout == LAYOUT_ROOT16 {
        let h = key_stem(masked) as usize;
        let lo = read_u32(buf, level.aux_off + h * 4) as usize;
        let hi = read_u32(buf, level.aux_off + (h + 1) * 4) as usize;
        sorted_range_search::<K>(buf, level.keys_off, lo, hi, masked)
    } else {
        eytzinger_search::<K>(buf, level, masked)
    }
}

/// Root-table stem of a key: its top 16 bits. Only meaningful for
/// 32-bit keys; every call site is behind the [`LAYOUT_ROOT16`] flag,
/// which the validator only accepts on IPv4 levels.
#[inline]
fn key_stem<K: PrefixKey>(key: K) -> u32 {
    debug_assert_eq!(K::SIZE, 4, "root tables only exist on IPv4 levels");
    key.low32() >> 16
}

/// Longest-prefix match over one family's levels (longest first).
fn lpm<K: PrefixKey>(buf: &[u8], levels: &[LevelRef], addr: K) -> Option<(u8, u32)> {
    for level in levels {
        let masked = addr.and(K::mask(level.len));
        if let Some(i) = level_find::<K>(buf, level, masked) {
            return Some((level.len, read_u32(buf, level.labels_off + i * 4)));
        }
    }
    None
}

/// Build the Eytzinger permutation of `0..n`: `perm[i]` is the sorted
/// position stored at physical slot `i`.
fn eytzinger_perm(n: usize) -> Vec<usize> {
    fn fill(perm: &mut [usize], k: usize, next: &mut usize) {
        if k > perm.len() {
            return;
        }
        fill(perm, 2 * k, next);
        perm[k - 1] = *next;
        *next += 1;
        fill(perm, 2 * k + 1, next);
    }
    let mut perm = vec![0usize; n];
    let mut next = 0;
    fill(&mut perm, 1, &mut next);
    perm
}

/// Whether the canonical encoding gives this level a root table.
fn wants_root16<K: PrefixKey>(family_level_idx: usize, count: usize) -> bool {
    K::SIZE == 4 && family_level_idx == 0 && count >= ROOT_TABLE_MIN
}

/// Serialize an index into a sealed v2 artifact. Canonical: the same
/// index always produces byte-identical output.
pub(crate) fn encode(index: &FrozenIndex) -> Vec<u8> {
    let nlevels = index.v4.levels.len() + index.v6.levels.len();
    let labels_off = HEADER_LEN;
    let dir_off = labels_off + index.labels.len() * 8;
    let data_off = dir_off + nlevels * 32;

    // First pass: compute each level's section offsets.
    struct Plan {
        family: u8,
        len: u8,
        layout: u8,
        count: usize,
        key_size: usize,
        keys_off: usize,
        labels_off: usize,
        aux_off: usize,
    }
    let mut plans: Vec<Plan> = Vec::with_capacity(nlevels);
    let mut cur = data_off;
    let mut plan_family = |family: u8, key_size: usize, lens_counts: Vec<(u8, usize)>| {
        for (i, (len, count)) in lens_counts.into_iter().enumerate() {
            let layout = if key_size == 4 && i == 0 && count >= ROOT_TABLE_MIN {
                LAYOUT_ROOT16
            } else {
                LAYOUT_EYTZINGER
            };
            let keys_off = cur;
            cur += align8(count * key_size);
            let labels_off = cur;
            cur += align8(count * 4);
            let aux_off = if layout == LAYOUT_ROOT16 {
                let off = cur;
                cur += align8(ROOT_ENTRIES * 4);
                off
            } else {
                0
            };
            plans.push(Plan {
                family,
                len,
                layout,
                count,
                key_size,
                keys_off,
                labels_off,
                aux_off,
            });
        }
    };
    plan_family(
        4,
        4,
        index
            .v4
            .levels
            .iter()
            .map(|l| (l.len, l.keys.len()))
            .collect(),
    );
    plan_family(
        6,
        16,
        index
            .v6
            .levels
            .iter()
            .map(|l| (l.len, l.keys.len()))
            .collect(),
    );
    let body_len = cur;

    let mut out = vec![0u8; body_len + TRAILER_LEN];
    // Labels.
    for (i, label) in index.labels.iter().enumerate() {
        let off = labels_off + i * 8;
        out[off..off + 4].copy_from_slice(&label.asn.value().to_le_bytes());
        out[off + 4..off + 8].copy_from_slice(&(label.class.to_byte() as u32).to_le_bytes());
    }
    // Directory.
    for (i, p) in plans.iter().enumerate() {
        let off = dir_off + i * 32;
        out[off] = p.family;
        out[off + 1] = p.len;
        out[off + 2] = p.layout;
        out[off + 4..off + 8].copy_from_slice(&(p.count as u32).to_le_bytes());
        out[off + 8..off + 16].copy_from_slice(&(p.keys_off as u64).to_le_bytes());
        out[off + 16..off + 24].copy_from_slice(&(p.labels_off as u64).to_le_bytes());
        out[off + 24..off + 32].copy_from_slice(&(p.aux_off as u64).to_le_bytes());
    }
    // Data sections.
    fn write_level<K: PrefixKey>(out: &mut [u8], plan_layout: u8, level: &Level<K>, p: (usize, usize, usize)) {
        let (keys_off, labels_off, aux_off) = p;
        let n = level.keys.len();
        if plan_layout == LAYOUT_ROOT16 {
            let mut buf = Vec::with_capacity(K::SIZE);
            for (i, &key) in level.keys.iter().enumerate() {
                buf.clear();
                key.write_le(&mut buf);
                out[keys_off + i * K::SIZE..keys_off + (i + 1) * K::SIZE].copy_from_slice(&buf);
                out[labels_off + i * 4..labels_off + i * 4 + 4]
                    .copy_from_slice(&level.labels[i].to_le_bytes());
            }
            // Cumulative /16 histogram: root[h] = keys with stem < h.
            let mut i = 0usize;
            for h in 0..ROOT_ENTRIES {
                while i < n && (key_stem(level.keys[i]) as usize) < h {
                    i += 1;
                }
                out[aux_off + h * 4..aux_off + h * 4 + 4]
                    .copy_from_slice(&(i as u32).to_le_bytes());
            }
        } else {
            let perm = eytzinger_perm(n);
            let mut buf = Vec::with_capacity(K::SIZE);
            for (phys, &sorted) in perm.iter().enumerate() {
                buf.clear();
                level.keys[sorted].write_le(&mut buf);
                out[keys_off + phys * K::SIZE..keys_off + (phys + 1) * K::SIZE]
                    .copy_from_slice(&buf);
                out[labels_off + phys * 4..labels_off + phys * 4 + 4]
                    .copy_from_slice(&level.labels[sorted].to_le_bytes());
            }
        }
    }
    let mut pi = 0;
    for level in &index.v4.levels {
        let p = &plans[pi];
        debug_assert_eq!(p.key_size, 4);
        write_level::<u32>(&mut out, p.layout, level, (p.keys_off, p.labels_off, p.aux_off));
        pi += 1;
    }
    for level in &index.v6.levels {
        let p = &plans[pi];
        write_level::<u128>(&mut out, p.layout, level, (p.keys_off, p.labels_off, p.aux_off));
        pi += 1;
    }

    // Header (after data, so quick_hash can cover the sections).
    out[0..8].copy_from_slice(&crate::artifact::ARTIFACT_MAGIC);
    out[8..12].copy_from_slice(&ARTIFACT_V2_VERSION.to_le_bytes());
    out[12..16].copy_from_slice(&(HEADER_LEN as u32).to_le_bytes());
    let quick = content_hash(&out[HEADER_LEN..body_len]);
    out[16..24].copy_from_slice(&quick.to_le_bytes());
    out[24..28].copy_from_slice(&(index.labels.len() as u32).to_le_bytes());
    out[28..32].copy_from_slice(&(index.v4.levels.len() as u32).to_le_bytes());
    out[32..36].copy_from_slice(&(index.v6.levels.len() as u32).to_le_bytes());
    out[40..48].copy_from_slice(&(labels_off as u64).to_le_bytes());
    out[48..56].copy_from_slice(&(dir_off as u64).to_le_bytes());
    out[56..64].copy_from_slice(&(body_len as u64).to_le_bytes());

    // Trailer: same seal discipline as v1.
    let crc = cellstream::crc32(&out[..body_len]);
    out[body_len..body_len + 8].copy_from_slice(&(body_len as u64).to_le_bytes());
    out[body_len + 8..body_len + 12].copy_from_slice(&crc.to_le_bytes());
    out[body_len + 12..body_len + 16].copy_from_slice(&TRAILER_MAGIC);
    out
}

/// Validate a v2 artifact in place and return its section layout.
///
/// # Errors
/// [`ServeError::Corrupt`] on any seal, header, layout, or structural
/// failure; [`ServeError::UnsupportedVersion`] when the sealed version
/// is neither 1 nor 2 (version-1 bytes are the caller's business —
/// this parser rejects them as a version mismatch too).
pub(crate) fn parse(buf: &[u8]) -> Result<V2Layout, ServeError> {
    let min = HEADER_LEN + TRAILER_LEN;
    if buf.len() < min {
        return Err(corrupt(format!(
            "{} bytes is shorter than the {min}-byte v2 minimum",
            buf.len()
        )));
    }
    let (body, trailer) = buf.split_at(buf.len() - TRAILER_LEN);
    let sealed_len = u64::from_le_bytes(trailer[0..8].try_into().expect("8 bytes"));
    if sealed_len != body.len() as u64 {
        return Err(corrupt(format!(
            "length seal mismatch: trailer says {sealed_len}, body is {}",
            body.len()
        )));
    }
    if trailer[12..16] != TRAILER_MAGIC {
        return Err(corrupt("bad trailer magic"));
    }
    let sealed_crc = u32::from_le_bytes(trailer[8..12].try_into().expect("4 bytes"));
    let crc = cellstream::crc32(body);
    if crc != sealed_crc {
        return Err(corrupt(format!(
            "CRC mismatch: sealed {sealed_crc:#010x}, computed {crc:#010x}"
        )));
    }

    if body[0..8] != crate::artifact::ARTIFACT_MAGIC {
        return Err(corrupt("bad artifact magic"));
    }
    let version = read_u32(body, 8);
    if version != ARTIFACT_V2_VERSION {
        return Err(ServeError::UnsupportedVersion(version));
    }
    if read_u32(body, 12) as usize != HEADER_LEN {
        return Err(corrupt("bad v2 header length"));
    }
    let quick_hash = read_u64(body, 16);
    let label_count = read_u32(body, 24) as usize;
    let v4_levels = read_u32(body, 28) as usize;
    let v6_levels = read_u32(body, 32) as usize;
    if read_u32(body, 36) != 0 {
        return Err(corrupt("nonzero reserved header field"));
    }
    let labels_off = read_u64(body, 40) as usize;
    let dir_off = read_u64(body, 48) as usize;
    let body_len = read_u64(body, 56) as usize;
    if body_len != body.len() {
        return Err(corrupt("header body length disagrees with the trailer"));
    }
    if quick_hash != content_hash(&body[HEADER_LEN..]) {
        return Err(corrupt("quick-hash fingerprint mismatch"));
    }

    // Canonical section packing: recompute every offset and require the
    // sealed ones to match — this proves alignment, bounds, and
    // non-overlap in one stroke.
    if labels_off != HEADER_LEN {
        return Err(corrupt("labels section not at the canonical offset"));
    }
    let expect_dir = labels_off
        .checked_add(label_count.checked_mul(8).ok_or_else(|| corrupt("label count overflow"))?)
        .ok_or_else(|| corrupt("label section overflow"))?;
    if dir_off != expect_dir {
        return Err(corrupt("directory not at the canonical offset"));
    }
    let nlevels = v4_levels + v6_levels;
    let data_off = dir_off
        .checked_add(nlevels * 32)
        .filter(|&o| o <= body.len())
        .ok_or_else(|| corrupt("directory exceeds the body"))?;

    // Labels: class bytes must decode.
    for i in 0..label_count {
        let class = read_u32(body, labels_off + i * 8 + 4);
        if class > u8::MAX as u32 || AsClass::from_byte(class as u8).is_none() {
            return Err(corrupt(format!("invalid label class value {class}")));
        }
    }

    // Directory + data sections.
    let mut v4: Vec<LevelRef> = Vec::with_capacity(v4_levels);
    let mut v6: Vec<LevelRef> = Vec::with_capacity(v6_levels);
    let mut cur = data_off;
    for i in 0..nlevels {
        let off = dir_off + i * 32;
        let family = body[off];
        let len = body[off + 1];
        let layout = body[off + 2];
        if body[off + 3] != 0 {
            return Err(corrupt("nonzero directory pad byte"));
        }
        let count = read_u32(body, off + 4) as usize;
        let keys_off = read_u64(body, off + 8) as usize;
        let labels_sec = read_u64(body, off + 16) as usize;
        let aux_off = read_u64(body, off + 24) as usize;

        let is_v4 = i < v4_levels;
        let (family_idx, key_size, bits) = if is_v4 { (i, 4, 32u8) } else { (i - v4_levels, 16, 128) };
        if family != if is_v4 { 4 } else { 6 } {
            return Err(corrupt(format!("directory entry {i} has family {family}")));
        }
        if len > bits {
            return Err(corrupt(format!(
                "prefix length {len} exceeds the family width {bits}"
            )));
        }
        if count == 0 {
            return Err(corrupt(format!("empty level /{len}")));
        }
        let prev = if is_v4 { v4.last() } else { v6.last() };
        if let Some(prev) = prev {
            if prev.len <= len {
                return Err(corrupt(format!(
                    "levels not longest-first: /{} after /{}",
                    len, prev.len
                )));
            }
        }
        let canonical_layout = if key_size == 4 && family_idx == 0 && count >= ROOT_TABLE_MIN {
            LAYOUT_ROOT16
        } else {
            LAYOUT_EYTZINGER
        };
        if layout != canonical_layout {
            return Err(corrupt(format!(
                "level /{len} has layout {layout}, canonical is {canonical_layout}"
            )));
        }
        if keys_off != cur {
            return Err(corrupt(format!("level /{len} keys not at the canonical offset")));
        }
        cur = cur
            .checked_add(align8(count.checked_mul(key_size).ok_or_else(|| corrupt("key section overflow"))?))
            .ok_or_else(|| corrupt("key section overflow"))?;
        if labels_sec != cur {
            return Err(corrupt(format!("level /{len} labels not at the canonical offset")));
        }
        cur = cur
            .checked_add(align8(count * 4))
            .ok_or_else(|| corrupt("label section overflow"))?;
        if layout == LAYOUT_ROOT16 {
            if aux_off != cur {
                return Err(corrupt(format!("level /{len} root table not at the canonical offset")));
            }
            cur = cur
                .checked_add(align8(ROOT_ENTRIES * 4))
                .ok_or_else(|| corrupt("root table overflow"))?;
        } else if aux_off != 0 {
            return Err(corrupt("aux offset set on a level without a root table"));
        }
        if cur > body.len() {
            return Err(corrupt(format!("level /{len} sections exceed the body")));
        }
        // Canonical encoding zero-fills the alignment padding.
        let key_end = keys_off + count * key_size;
        let lab_end = labels_sec + count * 4;
        let mut pads = vec![key_end..align8(key_end), lab_end..align8(lab_end)];
        if layout == LAYOUT_ROOT16 {
            let aux_end = aux_off + ROOT_ENTRIES * 4;
            pads.push(aux_end..align8(aux_end));
        }
        if pads
            .into_iter()
            .any(|r| body[r].iter().any(|&b| b != 0))
        {
            return Err(corrupt(format!("nonzero section padding in level /{len}")));
        }
        let level = LevelRef {
            len,
            layout,
            count,
            keys_off,
            labels_off: labels_sec,
            aux_off,
        };
        if is_v4 {
            v4.push(level);
        } else {
            v6.push(level);
        }
    }
    if cur != body.len() {
        return Err(corrupt(format!(
            "{} trailing bytes after the last section",
            body.len() - cur
        )));
    }

    let layout = V2Layout {
        label_count,
        labels_off,
        v4,
        v6,
        quick_hash,
    };

    // Structural validation of every level's contents, in place.
    for level in &layout.v4 {
        validate_level::<u32>(body, level, label_count)?;
    }
    for level in &layout.v6 {
        validate_level::<u128>(body, level, label_count)?;
    }
    Ok(layout)
}

/// Prove a level's keys are masked + strictly ascending in logical
/// order, its label indexes in range, and (root-table levels) the aux
/// table exactly the cumulative /16 histogram.
fn validate_level<K: PrefixKey>(
    body: &[u8],
    level: &LevelRef,
    label_count: usize,
) -> Result<(), ServeError> {
    let mask = K::mask(level.len);
    let mut prev: Option<K> = None;
    let mut bad: Option<ServeError> = None;
    visit_in_order::<K>(body, level, &mut |key, idx| {
        if bad.is_some() {
            return;
        }
        if key.and(mask) != key {
            bad = Some(corrupt(format!("non-canonical key in level /{}", level.len)));
        } else if prev.is_some_and(|p| p >= key) {
            bad = Some(corrupt(format!("unsorted keys in level /{}", level.len)));
        } else if idx as usize >= label_count {
            bad = Some(corrupt(format!(
                "label index {idx} out of range (table has {label_count})"
            )));
        }
        prev = Some(key);
    });
    if let Some(err) = bad {
        return Err(err);
    }
    if level.layout == LAYOUT_ROOT16 {
        let mut i = 0usize;
        for h in 0..ROOT_ENTRIES {
            while i < level.count && (key_stem(key_at::<K>(body, level.keys_off, i)) as usize) < h {
                i += 1;
            }
            if read_u32(body, level.aux_off + h * 4) as usize != i {
                return Err(corrupt(format!(
                    "root table disagrees with the keys at stem {h}"
                )));
            }
        }
    }
    Ok(())
}

/// The borrowed zero-copy view of a validated v2 byte buffer.
///
/// Construction runs the full in-place validation; afterwards every
/// lookup reads straight out of `buf`. The owning counterpart is
/// [`ArtifactHandle`](crate::ArtifactHandle), which pairs a buffer
/// (mmap or aligned read) with this layout.
pub struct MappedIndex<'a> {
    buf: &'a [u8],
    layout: V2Layout,
}

impl<'a> MappedIndex<'a> {
    /// Validate `bytes` as a sealed v2 artifact and borrow it.
    ///
    /// # Errors
    /// See [`parse`]'s contract: [`ServeError::Corrupt`] or
    /// [`ServeError::UnsupportedVersion`].
    pub fn new(bytes: &'a [u8]) -> Result<MappedIndex<'a>, ServeError> {
        Ok(MappedIndex {
            buf: bytes,
            layout: parse(bytes)?,
        })
    }

    /// The header's cheap content fingerprint (FNV-1a of the sections).
    pub fn quick_hash(&self) -> u64 {
        self.layout.quick_hash()
    }

    /// Decode into the owned [`FrozenIndex`] form.
    pub fn to_frozen(&self) -> FrozenIndex {
        self.layout.to_frozen(self.buf)
    }
}

impl crate::view::IndexView for MappedIndex<'_> {
    fn lpm_v4(&self, addr: u32) -> Option<(u8, u32)> {
        self.layout.lpm_v4(self.buf, addr)
    }

    fn lpm_v6(&self, addr: u128) -> Option<(u8, u32)> {
        self.layout.lpm_v6(self.buf, addr)
    }

    fn label_at(&self, idx: u32) -> ServeLabel {
        self.layout.label_at(self.buf, idx)
    }

    fn longest_len_v4(&self) -> Option<u8> {
        self.layout.longest_len_v4()
    }

    fn longest_len_v6(&self) -> Option<u8> {
        self.layout.longest_len_v6()
    }

    fn prefix_counts(&self) -> (usize, usize) {
        self.layout.prefix_counts()
    }

    fn label_count(&self) -> usize {
        self.layout.label_count()
    }

    fn for_each_v4(&self, f: &mut dyn FnMut(Ipv4Net, ServeLabel)) {
        self.layout.for_each_v4(self.buf, f)
    }

    fn for_each_v6(&self, f: &mut dyn FnMut(Ipv6Net, ServeLabel)) {
        self.layout.for_each_v6(self.buf, f)
    }

    fn prefetch_v4(&self, addr: u32) {
        self.layout.prefetch_v4(self.buf, addr)
    }

    fn prefetch_v6(&self, addr: u128) {
        self.layout.prefetch_v6(self.buf, addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::IndexView;

    fn label(asn: u32, class: AsClass) -> ServeLabel {
        ServeLabel {
            asn: Asn(asn),
            class,
        }
    }

    fn sample_index() -> FrozenIndex {
        let mut b = FrozenIndex::builder();
        b.insert_v4("10.0.0.0/8".parse().expect("cidr"), label(1, AsClass::Mixed));
        b.insert_v4(
            "10.1.0.0/16".parse().expect("cidr"),
            label(2, AsClass::Dedicated),
        );
        b.insert_v4(
            "203.0.113.0/24".parse().expect("cidr"),
            label(2, AsClass::Dedicated),
        );
        b.insert_v6(
            "2001:db8::/48".parse().expect("cidr"),
            label(3, AsClass::Unknown),
        );
        b.insert_v6(
            "2001:db8:1::/64".parse().expect("cidr"),
            label(1, AsClass::Mixed),
        );
        b.build()
    }

    #[test]
    fn eytzinger_permutation_is_the_bfs_order() {
        // Sorted [0..7) lands as [3,1,5,0,2,4,6].
        assert_eq!(eytzinger_perm(7), vec![3, 1, 5, 0, 2, 4, 6]);
        assert_eq!(eytzinger_perm(0), Vec::<usize>::new());
        assert_eq!(eytzinger_perm(1), vec![0]);
        for n in 0..50 {
            let mut seen = eytzinger_perm(n);
            seen.sort_unstable();
            assert_eq!(seen, (0..n).collect::<Vec<_>>(), "perm({n}) is a permutation");
        }
    }

    #[test]
    fn roundtrip_preserves_the_index_and_is_canonical() {
        let index = sample_index();
        let bytes = encode(&index);
        let mapped = MappedIndex::new(&bytes).expect("intact v2 artifact parses");
        assert_eq!(mapped.to_frozen(), index);
        assert_eq!(encode(&mapped.to_frozen()), bytes, "re-encoding is byte-identical");
    }

    #[test]
    fn empty_index_roundtrips() {
        let index = FrozenIndex::builder().build();
        let bytes = encode(&index);
        let mapped = MappedIndex::new(&bytes).expect("empty v2 artifact parses");
        assert!(mapped.is_empty());
        assert_eq!(mapped.lpm_v4(0x0A000001), None);
        assert_eq!(mapped.to_frozen(), index);
    }

    #[test]
    fn mapped_lookups_match_frozen_lookups() {
        let index = sample_index();
        let bytes = encode(&index);
        let mapped = MappedIndex::new(&bytes).expect("parse");
        for addr in [
            0x0A000001u32,
            0x0A010203,
            0x0A010901,
            0xCB007105,
            0xCB007205,
            0x0B000001,
            0,
            u32::MAX,
        ] {
            assert_eq!(mapped.lookup_v4(addr), index.lookup_v4(addr), "{addr:#010x}");
        }
        for addr in [
            0x2001_0db8_0000_0000_0000_0000_0000_0001u128,
            0x2001_0db8_0001_0000_0000_0000_0000_0001,
            0x2001_0db9_0000_0000_0000_0000_0000_0001,
            0,
            u128::MAX,
        ] {
            assert_eq!(mapped.lookup_v6(addr), index.lookup_v6(addr), "{addr:#034x}");
        }
        assert_eq!(mapped.prefix_counts(), index.prefix_counts());
        assert_eq!(mapped.label_count(), index.label_count());
        assert_eq!(IndexView::as_count(&mapped), index.as_count());
        let mut mapped_entries = Vec::new();
        mapped.for_each_v4(&mut |net, l| mapped_entries.push((net, l)));
        assert_eq!(mapped_entries, index.entries_v4().collect::<Vec<_>>());
    }

    #[test]
    fn dense_level_gets_a_root_table_and_answers_identically() {
        let mut b = FrozenIndex::builder();
        // > ROOT_TABLE_MIN /24s spread over many /16 stems, plus a
        // shorter level so the LPM walk is exercised.
        for i in 0..(ROOT_TABLE_MIN as u32 + 500) {
            // ×7919 (odd) is a bijection mod 2^24, so the /24s are
            // distinct and spread across many /16 stems.
            let net = Ipv4Net::new((i.wrapping_mul(7919) & 0x00FF_FFFF) << 8, 24)
                .expect("valid /24");
            b.insert_v4(net, label(i % 97, AsClass::Dedicated));
        }
        b.insert_v4("0.0.0.0/0".parse().expect("cidr"), label(7, AsClass::Mixed));
        let index = b.build();
        let bytes = encode(&index);
        let mapped = MappedIndex::new(&bytes).expect("parse");
        // The longest level is sorted + root table, so the artifact
        // carries the 2^16+1-entry aux section.
        assert!(bytes.len() > ROOT_ENTRIES * 4, "root table emitted");
        let mut addrs: Vec<u32> = (0..20_000u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        addrs.extend((0..1000u32).map(|i| (i.wrapping_mul(7919) & 0x00FF_FFFF) << 8 | 5));
        for addr in addrs {
            assert_eq!(mapped.lookup_v4(addr), index.lookup_v4(addr), "{addr:#010x}");
        }
        assert_eq!(mapped.to_frozen(), index);
        assert_eq!(encode(&mapped.to_frozen()), bytes);
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        // Small artifact (no root table) so the exhaustive sweep stays
        // fast; sampled corruption of root-table files lives in the
        // property suite.
        let bytes = encode(&sample_index());
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80] {
                let mut bad = bytes.clone();
                bad[i] ^= flip;
                assert!(
                    MappedIndex::new(&bad).is_err(),
                    "flip {flip:#04x} at byte {i}/{} accepted",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let bytes = encode(&sample_index());
        for keep in 0..bytes.len() {
            assert!(
                MappedIndex::new(&bytes[..keep]).is_err(),
                "truncation to {keep}/{} bytes accepted",
                bytes.len()
            );
        }
    }

    #[test]
    fn v1_bytes_are_a_version_mismatch_not_a_panic() {
        let v1 = crate::artifact::encode_v1(&sample_index());
        assert_eq!(
            super::parse(&v1).expect_err("v1 bytes rejected"),
            ServeError::UnsupportedVersion(1)
        );
    }
}
