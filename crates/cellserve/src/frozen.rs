//! The immutable lookup structure: flat sorted arrays instead of a
//! pointer-chasing trie.
//!
//! [`FrozenIndex`] holds, per address family, one *level* per distinct
//! prefix length, ordered longest-first. A level is two parallel flat
//! arrays: the masked prefix keys, sorted ascending, and the index of
//! each prefix's label in the shared label table. Longest-prefix match
//! walks the levels longest-first, masks the queried address to the
//! level's length, and runs a branch-free binary search over the key
//! array; the first level that contains the masked key wins — exactly
//! the semantics of [`netaddr::PrefixTrie`], which the equivalence
//! property suite in `tests/frozen_props.rs` pins down.
//!
//! The layout is cache-friendly where the trie is not: a lookup touches
//! at most `levels × log2(keys)` contiguous array slots, with no child
//! pointers to chase and no allocation, and the whole structure
//! serializes to the sealed artifact format of [`crate::to_bytes`]
//! without transformation.

use std::collections::{BTreeMap, HashMap};

use cellspot::{Classification, MixedAnalysis};
use netaddr::{Asn, BlockId, Ipv4Net, Ipv6Net};

/// How the prefix's origin AS serves its traffic (§6 of the paper).
#[derive(Clone, Copy, Debug, Hash, PartialEq, Eq, PartialOrd, Ord)]
pub enum AsClass {
    /// The AS carries (almost) exclusively cellular demand.
    Dedicated,
    /// The AS mixes cellular and fixed-line demand.
    Mixed,
    /// No mixed/dedicated verdict was available when the artifact was
    /// built (e.g. the AS fell below the demand floor of the §5 filter).
    Unknown,
}

impl AsClass {
    /// The single-byte wire encoding shared by the CELLSERV artifact
    /// and the CELLDELT delta format: the mapping is part of both
    /// formats' v1 contracts and must never change.
    pub fn to_byte(self) -> u8 {
        match self {
            AsClass::Unknown => 0,
            AsClass::Dedicated => 1,
            AsClass::Mixed => 2,
        }
    }

    /// Decode the wire byte; anything above 2 is not a class.
    pub fn from_byte(byte: u8) -> Option<AsClass> {
        match byte {
            0 => Some(AsClass::Unknown),
            1 => Some(AsClass::Dedicated),
            2 => Some(AsClass::Mixed),
            _ => None,
        }
    }
}

impl std::fmt::Display for AsClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AsClass::Dedicated => "dedicated",
            AsClass::Mixed => "mixed",
            AsClass::Unknown => "unknown",
        })
    }
}

/// The label attached to every served prefix: origin AS plus its
/// mixed/dedicated class. Deduplicated into one table per artifact —
/// prefixes store a `u32` index into it.
#[derive(Clone, Copy, Debug, Hash, PartialEq, Eq, PartialOrd, Ord)]
pub struct ServeLabel {
    /// Origin AS of the prefix.
    pub asn: Asn,
    /// Mixed/dedicated verdict for that AS.
    pub class: AsClass,
}

/// A left-aligned prefix key: the integer address type of one family,
/// with just enough bit arithmetic for masking, serialization, and
/// cache-slot hashing. Implemented for `u32` (IPv4) and `u128` (IPv6).
pub(crate) trait PrefixKey: Copy + Ord {
    /// Family bit width (32 or 128).
    const BITS: u8;
    /// Serialized size in bytes (4 or 16).
    const SIZE: usize;
    /// Network mask for a prefix length; `mask(0)` is all-zeros and
    /// `mask(BITS)` is all-ones.
    fn mask(len: u8) -> Self;
    /// Bitwise AND.
    fn and(self, other: Self) -> Self;
    /// Append the key in little-endian byte order.
    fn write_le(self, out: &mut Vec<u8>);
    /// Read a key from exactly [`PrefixKey::SIZE`] little-endian bytes.
    fn read_le(bytes: &[u8]) -> Self;
    /// A well-mixed 64-bit hash, used to pick a hot-cache slot.
    fn cache_hash(self) -> u64;
    /// The low 32 bits of the key — the v2 root table buckets IPv4
    /// keys by `low32() >> 16` (lossy for IPv6, which never uses it).
    fn low32(self) -> u32;
}

/// Fibonacci-hashing multiplier (2^64 / φ): mixes the high bits well
/// even when keys differ only in a narrow bit range, as /24-aligned
/// prefixes do.
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

impl PrefixKey for u32 {
    const BITS: u8 = 32;
    const SIZE: usize = 4;

    #[inline]
    fn mask(len: u8) -> u32 {
        debug_assert!(len <= 32);
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    #[inline]
    fn and(self, other: u32) -> u32 {
        self & other
    }

    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn read_le(bytes: &[u8]) -> u32 {
        u32::from_le_bytes(bytes.try_into().expect("caller passes SIZE bytes"))
    }

    #[inline]
    fn cache_hash(self) -> u64 {
        (self as u64).wrapping_mul(HASH_MUL)
    }

    #[inline]
    fn low32(self) -> u32 {
        self
    }
}

impl PrefixKey for u128 {
    const BITS: u8 = 128;
    const SIZE: usize = 16;

    #[inline]
    fn mask(len: u8) -> u128 {
        debug_assert!(len <= 128);
        if len == 0 {
            0
        } else {
            u128::MAX << (128 - len)
        }
    }

    #[inline]
    fn and(self, other: u128) -> u128 {
        self & other
    }

    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn read_le(bytes: &[u8]) -> u128 {
        u128::from_le_bytes(bytes.try_into().expect("caller passes SIZE bytes"))
    }

    #[inline]
    fn cache_hash(self) -> u64 {
        (((self >> 64) as u64) ^ (self as u64)).wrapping_mul(HASH_MUL)
    }

    #[inline]
    fn low32(self) -> u32 {
        self as u32
    }
}

/// All prefixes of one length: masked keys sorted strictly ascending,
/// with the parallel label-table indexes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Level<K> {
    /// Prefix length shared by every key in the level.
    pub(crate) len: u8,
    /// Masked prefix keys, sorted strictly ascending.
    pub(crate) keys: Vec<K>,
    /// `labels[i]` is the label-table index of `keys[i]`.
    pub(crate) labels: Vec<u32>,
}

/// One address family's levels, ordered longest prefix first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct FamilyIndex<K> {
    pub(crate) levels: Vec<Level<K>>,
}

/// Branch-free binary search for an exact key. The classic branchless
/// lower-bound loop: `base` advances via a conditional move, never a
/// data-dependent branch, so the pipeline never mispredicts on the
/// random probe sequence a lookup workload produces.
#[inline]
fn branchless_eq_search<K: Copy + Ord>(keys: &[K], target: K) -> Option<usize> {
    if keys.is_empty() {
        return None;
    }
    let mut base = 0usize;
    let mut size = keys.len();
    while size > 1 {
        let half = size / 2;
        let probe = base + half;
        base = if keys[probe] <= target { probe } else { base };
        size -= half;
    }
    (keys[base] == target).then_some(base)
}

impl<K: PrefixKey> FamilyIndex<K> {
    pub(crate) fn empty() -> Self {
        FamilyIndex { levels: Vec::new() }
    }

    /// Longest-prefix match: `(masked key, prefix length, label index)`
    /// of the most specific covering prefix.
    pub(crate) fn lookup(&self, addr: K) -> Option<(K, u8, u32)> {
        for level in &self.levels {
            let masked = addr.and(K::mask(level.len));
            if let Some(i) = branchless_eq_search(&level.keys, masked) {
                return Some((masked, level.len, level.labels[i]));
            }
        }
        None
    }

    /// The longest prefix length present, i.e. the first level's — the
    /// mask the batch engine's hot cache keys on.
    pub(crate) fn longest_len(&self) -> Option<u8> {
        self.levels.first().map(|l| l.len)
    }

    pub(crate) fn prefix_count(&self) -> usize {
        self.levels.iter().map(|l| l.keys.len()).sum()
    }
}

/// The immutable serving index: label table plus per-family flat-array
/// levels. Built with [`FrozenIndexBuilder`] or decoded from a sealed
/// artifact with [`crate::from_bytes`]; never mutated after either.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrozenIndex {
    pub(crate) labels: Vec<ServeLabel>,
    pub(crate) v4: FamilyIndex<u32>,
    pub(crate) v6: FamilyIndex<u128>,
}

impl FrozenIndex {
    /// Start building an index prefix by prefix.
    pub fn builder() -> FrozenIndexBuilder {
        FrozenIndexBuilder::new()
    }

    /// Freeze a [`Classification`] into a serving index: every cellular
    /// block becomes a served prefix (/24 for IPv4, /48 for IPv6)
    /// labeled with its origin AS. When a [`MixedAnalysis`] is supplied
    /// its per-AS verdicts become the [`AsClass`]; ASes without a
    /// verdict — and every AS when `mixed` is `None` — are labeled
    /// [`AsClass::Unknown`].
    pub fn from_classification(
        classification: &Classification,
        mixed: Option<&MixedAnalysis>,
    ) -> FrozenIndex {
        let verdicts: HashMap<Asn, bool> = mixed
            .map(|m| m.verdicts.iter().map(|v| (v.asn, v.is_mixed)).collect())
            .unwrap_or_default();
        let mut builder = FrozenIndexBuilder::new();
        for (block, asn) in classification.iter() {
            let class = match verdicts.get(&asn) {
                Some(true) => AsClass::Mixed,
                Some(false) => AsClass::Dedicated,
                None => AsClass::Unknown,
            };
            let label = ServeLabel { asn, class };
            match block {
                BlockId::V4(blk) => builder.insert_v4(blk.network(), label),
                BlockId::V6(blk) => builder.insert_v6(blk.network(), label),
            }
        }
        builder.build()
    }

    /// Longest-prefix match for an IPv4 address: the most specific
    /// served prefix covering it, with its label.
    pub fn lookup_v4(&self, addr: u32) -> Option<(Ipv4Net, ServeLabel)> {
        let (key, len, idx) = self.v4.lookup(addr)?;
        let net = Ipv4Net::new(key, len).expect("level length ≤ 32 by construction");
        Some((net, self.labels[idx as usize]))
    }

    /// Longest-prefix match for an IPv6 address.
    pub fn lookup_v6(&self, addr: u128) -> Option<(Ipv6Net, ServeLabel)> {
        let (key, len, idx) = self.v6.lookup(addr)?;
        let net = Ipv6Net::new(key, len).expect("level length ≤ 128 by construction");
        Some((net, self.labels[idx as usize]))
    }

    /// Total served prefixes across both families.
    pub fn len(&self) -> usize {
        self.v4.prefix_count() + self.v6.prefix_count()
    }

    /// True when no prefix is served.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(IPv4, IPv6)` served-prefix counts.
    pub fn prefix_counts(&self) -> (usize, usize) {
        (self.v4.prefix_count(), self.v6.prefix_count())
    }

    /// Number of distinct labels in the table.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of distinct origin ASes across the label table.
    pub fn as_count(&self) -> usize {
        // Labels are sorted by (asn, class), so equal ASes are adjacent.
        let mut count = 0;
        let mut last: Option<Asn> = None;
        for l in &self.labels {
            if last != Some(l.asn) {
                count += 1;
                last = Some(l.asn);
            }
        }
        count
    }

    /// Every served IPv4 prefix with its label, in canonical artifact
    /// order: shortest prefix length first, keys ascending within a
    /// length — the iteration order [`FrozenIndexBuilder`] would
    /// reproduce, so `collect → rebuild` round-trips byte-identically.
    pub fn entries_v4(&self) -> impl Iterator<Item = (Ipv4Net, ServeLabel)> + '_ {
        self.v4.levels.iter().rev().flat_map(move |level| {
            level
                .keys
                .iter()
                .zip(&level.labels)
                .map(move |(&key, &idx)| {
                    let net =
                        Ipv4Net::new(key, level.len).expect("level length ≤ 32 by construction");
                    (net, self.labels[idx as usize])
                })
        })
    }

    /// Every served IPv6 prefix with its label, in canonical order (see
    /// [`FrozenIndex::entries_v4`]).
    pub fn entries_v6(&self) -> impl Iterator<Item = (Ipv6Net, ServeLabel)> + '_ {
        self.v6.levels.iter().rev().flat_map(move |level| {
            level
                .keys
                .iter()
                .zip(&level.labels)
                .map(move |(&key, &idx)| {
                    let net =
                        Ipv6Net::new(key, level.len).expect("level length ≤ 128 by construction");
                    (net, self.labels[idx as usize])
                })
        })
    }

    /// The label at a validated table index (decoder and engine
    /// internals only — indexes come from the index itself).
    pub(crate) fn label(&self, idx: u32) -> ServeLabel {
        self.labels[idx as usize]
    }
}

impl crate::view::IndexView for FrozenIndex {
    fn lpm_v4(&self, addr: u32) -> Option<(u8, u32)> {
        self.v4.lookup(addr).map(|(_, len, idx)| (len, idx))
    }

    fn lpm_v6(&self, addr: u128) -> Option<(u8, u32)> {
        self.v6.lookup(addr).map(|(_, len, idx)| (len, idx))
    }

    fn label_at(&self, idx: u32) -> ServeLabel {
        self.labels[idx as usize]
    }

    fn longest_len_v4(&self) -> Option<u8> {
        self.v4.longest_len()
    }

    fn longest_len_v6(&self) -> Option<u8> {
        self.v6.longest_len()
    }

    fn prefix_counts(&self) -> (usize, usize) {
        FrozenIndex::prefix_counts(self)
    }

    fn label_count(&self) -> usize {
        self.labels.len()
    }

    fn for_each_v4(&self, f: &mut dyn FnMut(Ipv4Net, ServeLabel)) {
        for (net, label) in self.entries_v4() {
            f(net, label);
        }
    }

    fn for_each_v6(&self, f: &mut dyn FnMut(Ipv6Net, ServeLabel)) {
        for (net, label) in self.entries_v6() {
            f(net, label);
        }
    }
}

/// Accumulates prefixes for a [`FrozenIndex`]. Duplicate prefixes
/// resolve last-wins, matching [`netaddr::PrefixTrie::insert`]'s
/// replacement semantics, so a builder fed the same sequence as a trie
/// freezes to an index with identical lookups.
#[derive(Clone, Debug, Default)]
pub struct FrozenIndexBuilder {
    v4: BTreeMap<(u8, u32), ServeLabel>,
    v6: BTreeMap<(u8, u128), ServeLabel>,
}

impl FrozenIndexBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or replace) an IPv4 prefix.
    pub fn insert_v4(&mut self, net: Ipv4Net, label: ServeLabel) {
        self.v4.insert((net.len(), net.addr()), label);
    }

    /// Add (or replace) an IPv6 prefix.
    pub fn insert_v6(&mut self, net: Ipv6Net, label: ServeLabel) {
        self.v6.insert((net.len(), net.addr()), label);
    }

    /// Freeze into the immutable index. Canonical by construction: the
    /// label table is deduplicated and sorted, levels are ordered
    /// longest-first, keys within a level strictly ascending — the same
    /// builder contents always freeze to byte-identical artifacts.
    pub fn build(self) -> FrozenIndex {
        let labels: Vec<ServeLabel> = self
            .v4
            .values()
            .chain(self.v6.values())
            .copied()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let ids: BTreeMap<ServeLabel, u32> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| (*l, i as u32))
            .collect();
        FrozenIndex {
            v4: family_from_map(self.v4, &ids),
            v6: family_from_map(self.v6, &ids),
            labels,
        }
    }
}

/// Group a `(len, key) → label` map into longest-first levels.
fn family_from_map<K: PrefixKey>(
    map: BTreeMap<(u8, K), ServeLabel>,
    ids: &BTreeMap<ServeLabel, u32>,
) -> FamilyIndex<K> {
    let mut levels: Vec<Level<K>> = Vec::new();
    // BTreeMap iteration is (len ascending, key ascending) — exactly one
    // contiguous run per length, already sorted within it.
    for ((len, key), label) in map {
        let idx = ids[&label];
        match levels.last_mut() {
            Some(level) if level.len == len => {
                level.keys.push(key);
                level.labels.push(idx);
            }
            _ => levels.push(Level {
                len,
                keys: vec![key],
                labels: vec![idx],
            }),
        }
    }
    levels.reverse();
    FamilyIndex { levels }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label(asn: u32, class: AsClass) -> ServeLabel {
        ServeLabel {
            asn: Asn(asn),
            class,
        }
    }

    fn v4(s: &str) -> Ipv4Net {
        s.parse().expect("valid v4 cidr")
    }

    fn v6(s: &str) -> Ipv6Net {
        s.parse().expect("valid v6 cidr")
    }

    #[test]
    fn branchless_search_finds_exact_keys_only() {
        let keys = [2u32, 5, 9, 14, 20];
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(branchless_eq_search(&keys, k), Some(i));
        }
        for miss in [0u32, 3, 10, 21] {
            assert_eq!(branchless_eq_search(&keys, miss), None);
        }
        assert_eq!(branchless_eq_search::<u32>(&[], 7), None);
        assert_eq!(branchless_eq_search(&[7u32], 7), Some(0));
        assert_eq!(branchless_eq_search(&[7u32], 8), None);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut b = FrozenIndex::builder();
        b.insert_v4(v4("10.0.0.0/8"), label(1, AsClass::Mixed));
        b.insert_v4(v4("10.1.0.0/16"), label(2, AsClass::Dedicated));
        b.insert_v4(v4("10.1.2.0/24"), label(3, AsClass::Unknown));
        let idx = b.build();
        // 10.1.2.3 → the /24.
        let (net, l) = idx.lookup_v4(0x0A010203).expect("covered");
        assert_eq!(net, v4("10.1.2.0/24"));
        assert_eq!(l.asn, Asn(3));
        // 10.1.9.1 → the /16.
        let (net, l) = idx.lookup_v4(0x0A010901).expect("covered");
        assert_eq!(net, v4("10.1.0.0/16"));
        assert_eq!(l.asn, Asn(2));
        // 10.200.0.1 → the /8.
        let (net, l) = idx.lookup_v4(0x0AC80001).expect("covered");
        assert_eq!(net, v4("10.0.0.0/8"));
        assert_eq!(l, label(1, AsClass::Mixed));
        // 11.0.0.1 → miss.
        assert_eq!(idx.lookup_v4(0x0B000001), None);
    }

    #[test]
    fn duplicate_insert_is_last_wins() {
        let mut b = FrozenIndex::builder();
        b.insert_v4(v4("10.0.0.0/8"), label(1, AsClass::Unknown));
        b.insert_v4(v4("10.0.0.0/8"), label(9, AsClass::Dedicated));
        let idx = b.build();
        assert_eq!(idx.len(), 1);
        let (_, l) = idx.lookup_v4(0x0A000000).expect("covered");
        assert_eq!(l, label(9, AsClass::Dedicated));
    }

    #[test]
    fn default_route_catches_everything() {
        let mut b = FrozenIndex::builder();
        b.insert_v4(
            Ipv4Net::new(0, 0).expect("default"),
            label(1, AsClass::Unknown),
        );
        b.insert_v4(v4("203.0.113.0/24"), label(2, AsClass::Mixed));
        let idx = b.build();
        assert_eq!(
            idx.lookup_v4(0xCB007105).expect("covered").0,
            v4("203.0.113.0/24")
        );
        assert_eq!(
            idx.lookup_v4(0x01020304).expect("default catches").0,
            Ipv4Net::new(0, 0).expect("default")
        );
    }

    #[test]
    fn v6_lookups_work_and_families_are_disjoint() {
        let mut b = FrozenIndex::builder();
        b.insert_v6(v6("2001:db8::/48"), label(5, AsClass::Dedicated));
        let idx = b.build();
        let addr = 0x2001_0db8_0000_0000_0000_0000_0000_0001u128;
        let (net, l) = idx.lookup_v6(addr).expect("covered");
        assert_eq!(net, v6("2001:db8::/48"));
        assert_eq!(l.asn, Asn(5));
        assert_eq!(idx.lookup_v6(addr ^ (1 << 100)), None);
        // No v4 prefixes were inserted at all.
        assert_eq!(idx.lookup_v4(0x2001_0db8), None);
        assert_eq!(idx.prefix_counts(), (0, 1));
    }

    #[test]
    fn labels_are_deduplicated() {
        let mut b = FrozenIndex::builder();
        let shared = label(7, AsClass::Mixed);
        b.insert_v4(v4("10.0.0.0/24"), shared);
        b.insert_v4(v4("10.0.1.0/24"), shared);
        b.insert_v6(v6("2001:db8::/48"), shared);
        b.insert_v4(v4("10.0.2.0/24"), label(8, AsClass::Dedicated));
        let idx = b.build();
        assert_eq!(idx.label_count(), 2);
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn build_is_canonical_regardless_of_insert_order() {
        let entries = [
            (v4("10.0.0.0/8"), label(1, AsClass::Mixed)),
            (v4("10.1.0.0/16"), label(2, AsClass::Dedicated)),
            (v4("192.0.2.0/24"), label(3, AsClass::Unknown)),
        ];
        let mut fwd = FrozenIndex::builder();
        for (n, l) in entries {
            fwd.insert_v4(n, l);
        }
        let mut rev = FrozenIndex::builder();
        for (n, l) in entries.iter().rev() {
            rev.insert_v4(*n, *l);
        }
        assert_eq!(fwd.build(), rev.build());
    }

    #[test]
    fn class_bytes_round_trip_and_reject_garbage() {
        for class in [AsClass::Unknown, AsClass::Dedicated, AsClass::Mixed] {
            assert_eq!(AsClass::from_byte(class.to_byte()), Some(class));
        }
        for bad in 3u8..=255 {
            assert_eq!(AsClass::from_byte(bad), None);
        }
    }

    #[test]
    fn entries_round_trip_through_a_fresh_builder() {
        let mut b = FrozenIndex::builder();
        b.insert_v4(v4("10.0.0.0/8"), label(1, AsClass::Mixed));
        b.insert_v4(v4("10.1.0.0/16"), label(2, AsClass::Dedicated));
        b.insert_v4(v4("10.1.2.0/24"), label(1, AsClass::Mixed));
        b.insert_v6(v6("2001:db8::/48"), label(3, AsClass::Unknown));
        let idx = b.build();

        let v4_entries: Vec<_> = idx.entries_v4().collect();
        assert_eq!(v4_entries.len(), 3);
        // Canonical order: shortest length first, keys ascending.
        assert_eq!(v4_entries[0].0, v4("10.0.0.0/8"));
        assert_eq!(v4_entries[1].0, v4("10.1.0.0/16"));
        assert_eq!(v4_entries[2].0, v4("10.1.2.0/24"));
        assert_eq!(idx.entries_v6().count(), 1);
        assert_eq!(idx.as_count(), 3);

        let mut rebuilt = FrozenIndex::builder();
        for (net, l) in idx.entries_v4() {
            rebuilt.insert_v4(net, l);
        }
        for (net, l) in idx.entries_v6() {
            rebuilt.insert_v6(net, l);
        }
        assert_eq!(rebuilt.build(), idx, "entries fully describe the index");
    }

    #[test]
    fn from_classification_serves_every_cellular_block() {
        use cdnsim::{BeaconDataset, BeaconRecord, DemandDataset, DemandRecord};
        use cellspot::BlockIndex;
        use netaddr::Block24;

        let block = |i: u32| BlockId::V4(Block24::from_index(i));
        let beacons = BeaconDataset::from_records(
            "t",
            vec![
                BeaconRecord {
                    block: block(1),
                    asn: Asn(1),
                    hits_total: 80,
                    netinfo_hits: 10,
                    cellular_hits: 9,
                    wifi_hits: 1,
                    other_hits: 0,
                },
                BeaconRecord {
                    block: block(2),
                    asn: Asn(2),
                    hits_total: 80,
                    netinfo_hits: 10,
                    cellular_hits: 0,
                    wifi_hits: 10,
                    other_hits: 0,
                },
            ],
        );
        let demand = DemandDataset::from_raw(
            "t",
            vec![
                DemandRecord {
                    block: block(1),
                    asn: Asn(1),
                    du: 3.0,
                },
                DemandRecord {
                    block: block(2),
                    asn: Asn(2),
                    du: 1.0,
                },
            ],
        );
        let index = BlockIndex::build(&beacons, &demand);
        let class = Classification::with_default_threshold(&index);
        assert_eq!(class.len(), 1, "only block 1 is cellular");

        let frozen = FrozenIndex::from_classification(&class, None);
        assert_eq!(frozen.prefix_counts(), (1, 0));
        let addr = Block24::from_index(1).addr(5);
        let (net, l) = frozen.lookup_v4(addr).expect("cellular block served");
        assert_eq!(net, Block24::from_index(1).network());
        assert_eq!(l.asn, Asn(1));
        assert_eq!(l.class, AsClass::Unknown, "no mixed analysis supplied");
        // The wifi block is not served.
        assert_eq!(frozen.lookup_v4(Block24::from_index(2).addr(5)), None);
    }
}
