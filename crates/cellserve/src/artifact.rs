//! The sealed binary artifact format.
//!
//! A [`FrozenIndex`] serializes to a compact, versioned byte layout,
//! sealed against corruption with the same CRC-32 used by
//! `cellstream`'s checkpoint footers ([`cellstream::crc32`]). All
//! integers are little-endian.
//!
//! ```text
//! body:
//!   magic            8 bytes  "CELLSERV"
//!   version          u32      ARTIFACT_VERSION (1)
//!   label_count      u32
//!   labels           label_count × { asn: u32, class: u8 }
//!   v4 family:
//!     level_count    u8       levels ordered longest prefix first
//!     levels         level_count × {
//!       prefix_len   u8
//!       entry_count  u32
//!       keys         entry_count × u32   masked, strictly ascending
//!       label_idx    entry_count × u32   indexes into the label table
//!     }
//!   v6 family:       same shape with u128 (16-byte) keys
//! trailer (16 bytes):
//!   body_len         u64      length of everything before the trailer
//!   crc32            u32      CRC-32 (IEEE) of the body
//!   trailer magic    4 bytes  "CSRV"
//! ```
//!
//! [`from_bytes`] verifies the seal (trailer magic, length, CRC) before
//! touching the body, then re-validates every structural invariant the
//! lookup path relies on — sorted keys, canonical (masked) prefixes,
//! longest-first level order, in-range label indexes. Any single-byte
//! corruption anywhere in the file is rejected: CRC-32 detects all
//! single-byte errors in the body, and each trailer field is checked
//! directly. Encoding is canonical, so `to_bytes(from_bytes(b)?) == b`.

use crate::error::ServeError;
use crate::frozen::{AsClass, FamilyIndex, FrozenIndex, Level, PrefixKey, ServeLabel};
use netaddr::Asn;

/// Leading magic identifying a cellserve artifact.
pub const ARTIFACT_MAGIC: [u8; 8] = *b"CELLSERV";

/// Format version this build writes and reads.
pub const ARTIFACT_VERSION: u32 = 1;

/// Trailing magic closing the seal.
const TRAILER_MAGIC: [u8; 4] = *b"CSRV";

/// Trailer size: body length (8) + CRC-32 (4) + magic (4).
const TRAILER_LEN: usize = 16;

fn corrupt(why: impl Into<String>) -> ServeError {
    ServeError::Corrupt(why.into())
}

fn decode_class(byte: u8) -> Result<AsClass, ServeError> {
    AsClass::from_byte(byte).ok_or_else(|| corrupt(format!("invalid label class byte {byte}")))
}

/// Serialize an index into a sealed **v1** artifact.
///
/// Deprecated entry point: new code should go through
/// [`Artifact::encode`](crate::Artifact::encode) (which also writes the
/// mappable v2 format) or [`Artifact::open`](crate::Artifact::open) to
/// load. Kept for one release as a shim.
#[deprecated(
    since = "0.2.0",
    note = "use `Artifact::encode(index, ArtifactFormat::V1)` or, preferably, the v2 format"
)]
pub fn to_bytes(index: &FrozenIndex) -> Vec<u8> {
    encode_v1(index)
}

/// Verify the seal and decode a **v1** artifact into a [`FrozenIndex`].
///
/// Deprecated entry point: new code should use
/// [`Artifact::open`](crate::Artifact::open) /
/// [`Artifact::from_bytes`](crate::Artifact::from_bytes), which sniff
/// v1/v2 and return a unified [`IndexView`](crate::IndexView), or
/// [`Artifact::decode`](crate::Artifact::decode) for the owned form.
///
/// # Errors
/// As [`decode_v1`]: [`ServeError::Corrupt`] or
/// [`ServeError::UnsupportedVersion`].
#[deprecated(
    since = "0.2.0",
    note = "use `Artifact::open`/`Artifact::from_bytes` (v1/v2 sniffing) or `Artifact::decode`"
)]
pub fn from_bytes(bytes: &[u8]) -> Result<FrozenIndex, ServeError> {
    decode_v1(bytes)
}

/// Serialize an index into a sealed v1 artifact (crate-internal name;
/// the public surface is [`Artifact::encode`](crate::Artifact::encode)).
pub(crate) fn encode_v1(index: &FrozenIndex) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&ARTIFACT_MAGIC);
    out.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
    out.extend_from_slice(&(index.labels.len() as u32).to_le_bytes());
    for label in &index.labels {
        out.extend_from_slice(&label.asn.value().to_le_bytes());
        out.push(label.class.to_byte());
    }
    encode_family(&mut out, &index.v4);
    encode_family(&mut out, &index.v6);
    let body_len = out.len() as u64;
    let crc = cellstream::crc32(&out);
    out.extend_from_slice(&body_len.to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&TRAILER_MAGIC);
    out
}

fn encode_family<K: PrefixKey>(out: &mut Vec<u8>, fam: &FamilyIndex<K>) {
    out.push(fam.levels.len() as u8);
    for level in &fam.levels {
        out.push(level.len);
        out.extend_from_slice(&(level.keys.len() as u32).to_le_bytes());
        for &key in &level.keys {
            key.write_le(out);
        }
        for &idx in &level.labels {
            out.extend_from_slice(&idx.to_le_bytes());
        }
    }
}

/// Verify the seal and decode a v1 artifact back into a
/// [`FrozenIndex`].
///
/// # Errors
///
/// [`ServeError::Corrupt`] on any integrity or structural failure,
/// [`ServeError::UnsupportedVersion`] when the (intact) artifact was
/// written by a different format revision (including v2 — route
/// mixed-version loads through [`Artifact::open`](crate::Artifact::open)).
pub(crate) fn decode_v1(bytes: &[u8]) -> Result<FrozenIndex, ServeError> {
    let min = ARTIFACT_MAGIC.len() + 4 + TRAILER_LEN;
    if bytes.len() < min {
        return Err(corrupt(format!(
            "{} bytes is shorter than the {min}-byte minimum",
            bytes.len()
        )));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - TRAILER_LEN);
    let sealed_len = u64::from_le_bytes(trailer[0..8].try_into().expect("8 bytes"));
    if sealed_len != body.len() as u64 {
        return Err(corrupt(format!(
            "length seal mismatch: trailer says {sealed_len}, body is {}",
            body.len()
        )));
    }
    let sealed_crc = u32::from_le_bytes(trailer[8..12].try_into().expect("4 bytes"));
    if trailer[12..16] != TRAILER_MAGIC {
        return Err(corrupt("bad trailer magic"));
    }
    let crc = cellstream::crc32(body);
    if crc != sealed_crc {
        return Err(corrupt(format!(
            "CRC mismatch: sealed {sealed_crc:#010x}, computed {crc:#010x}"
        )));
    }

    let mut r = Reader { body, pos: 0 };
    if r.take(ARTIFACT_MAGIC.len())? != ARTIFACT_MAGIC {
        return Err(corrupt("bad artifact magic"));
    }
    let version = r.u32()?;
    if version != ARTIFACT_VERSION {
        return Err(ServeError::UnsupportedVersion(version));
    }
    let label_count = r.u32()?;
    let mut labels = Vec::with_capacity(label_count.min(1 << 20) as usize);
    for _ in 0..label_count {
        let asn = Asn(r.u32()?);
        let class = decode_class(r.u8()?)?;
        labels.push(ServeLabel { asn, class });
    }
    let v4 = decode_family::<u32>(&mut r, label_count)?;
    let v6 = decode_family::<u128>(&mut r, label_count)?;
    if r.pos != body.len() {
        return Err(corrupt(format!(
            "{} trailing bytes after the last level",
            body.len() - r.pos
        )));
    }
    Ok(FrozenIndex { labels, v4, v6 })
}

/// Position-tracking reader over the verified body.
struct Reader<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.body.len())
            .ok_or_else(|| corrupt("truncated body"))?;
        let slice = &self.body[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
}

fn decode_family<K: PrefixKey>(
    r: &mut Reader<'_>,
    label_count: u32,
) -> Result<FamilyIndex<K>, ServeError> {
    let level_count = r.u8()?;
    let mut levels: Vec<Level<K>> = Vec::with_capacity(level_count as usize);
    for _ in 0..level_count {
        let len = r.u8()?;
        if len > K::BITS {
            return Err(corrupt(format!(
                "prefix length {len} exceeds the family width {}",
                K::BITS
            )));
        }
        if let Some(prev) = levels.last() {
            if prev.len <= len {
                return Err(corrupt(format!(
                    "levels not longest-first: /{} after /{}",
                    len, prev.len
                )));
            }
        }
        let entry_count = r.u32()? as usize;
        if entry_count == 0 {
            return Err(corrupt(format!("empty level /{len}")));
        }
        let key_bytes = entry_count
            .checked_mul(K::SIZE)
            .ok_or_else(|| corrupt("level entry count overflows"))?;
        let raw_keys = r.take(key_bytes)?;
        let mask = K::mask(len);
        let mut keys = Vec::with_capacity(entry_count);
        for chunk in raw_keys.chunks_exact(K::SIZE) {
            let key = K::read_le(chunk);
            if key.and(mask) != key {
                return Err(corrupt(format!("non-canonical key in level /{len}")));
            }
            if let Some(&prev) = keys.last() {
                if prev >= key {
                    return Err(corrupt(format!("unsorted keys in level /{len}")));
                }
            }
            keys.push(key);
        }
        let mut label_idx = Vec::with_capacity(entry_count);
        for _ in 0..entry_count {
            let idx = r.u32()?;
            if idx >= label_count {
                return Err(corrupt(format!(
                    "label index {idx} out of range (table has {label_count})"
                )));
            }
            label_idx.push(idx);
        }
        levels.push(Level {
            len,
            keys,
            labels: label_idx,
        });
    }
    Ok(FamilyIndex { levels })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netaddr::{Ipv4Net, Ipv6Net};

    fn sample_index() -> FrozenIndex {
        let mut b = FrozenIndex::builder();
        let label = |asn: u32, class: AsClass| ServeLabel {
            asn: Asn(asn),
            class,
        };
        b.insert_v4(
            "10.0.0.0/8".parse::<Ipv4Net>().expect("cidr"),
            label(1, AsClass::Mixed),
        );
        b.insert_v4(
            "10.1.0.0/16".parse::<Ipv4Net>().expect("cidr"),
            label(2, AsClass::Dedicated),
        );
        b.insert_v4(
            "203.0.113.0/24".parse::<Ipv4Net>().expect("cidr"),
            label(2, AsClass::Dedicated),
        );
        b.insert_v6(
            "2001:db8::/48".parse::<Ipv6Net>().expect("cidr"),
            label(3, AsClass::Unknown),
        );
        b.insert_v6(
            "2001:db8:1::/64".parse::<Ipv6Net>().expect("cidr"),
            label(1, AsClass::Mixed),
        );
        b.build()
    }

    #[test]
    fn roundtrip_preserves_the_index_and_is_canonical() {
        let index = sample_index();
        let bytes = encode_v1(&index);
        let back = decode_v1(&bytes).expect("intact artifact loads");
        assert_eq!(back, index);
        assert_eq!(encode_v1(&back), bytes, "re-encoding is byte-identical");
    }

    #[test]
    fn empty_index_roundtrips() {
        let index = FrozenIndex::builder().build();
        let back = decode_v1(&encode_v1(&index)).expect("empty artifact loads");
        assert!(back.is_empty());
        assert_eq!(back.lookup_v4(0x0A000001), None);
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let bytes = encode_v1(&sample_index());
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80] {
                let mut bad = bytes.clone();
                bad[i] ^= flip;
                assert!(
                    decode_v1(&bad).is_err(),
                    "flip {flip:#04x} at byte {i}/{} accepted",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let bytes = encode_v1(&sample_index());
        for keep in 0..bytes.len() {
            assert!(
                decode_v1(&bytes[..keep]).is_err(),
                "truncation to {keep}/{} bytes accepted",
                bytes.len()
            );
        }
    }

    #[test]
    fn future_versions_are_rejected_as_unsupported() {
        let index = sample_index();
        let mut bytes = encode_v1(&index);
        // Bump the version field and re-seal so only the version differs.
        let v = ARTIFACT_VERSION + 1;
        bytes[8..12].copy_from_slice(&v.to_le_bytes());
        let body_len = bytes.len() - 16;
        let crc = cellstream::crc32(&bytes[..body_len]);
        bytes[body_len + 8..body_len + 12].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_v1(&bytes), Err(ServeError::UnsupportedVersion(v)));
    }

    #[test]
    fn resealed_structural_corruption_is_still_rejected() {
        // A writer bug (or corruption plus a recomputed seal) passes the
        // CRC check; the structural validators must still refuse the
        // body. Corrupt the first label's class byte and re-seal.
        let mut bytes = encode_v1(&sample_index());
        let class_at = 8 + 4 + 4 + 4; // first label's class byte
        bytes[class_at] = 9;
        let body_len = bytes.len() - 16;
        let crc = cellstream::crc32(&bytes[..body_len]);
        bytes[body_len + 8..body_len + 12].copy_from_slice(&crc.to_le_bytes());
        let err = decode_v1(&bytes).expect_err("invalid class byte");
        assert!(err.to_string().contains("class byte"), "{err}");
    }
}
