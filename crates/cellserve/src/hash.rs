//! Content hashing for sealed artifacts.
//!
//! A generation's identity is the FNV-1a 64 hash of its sealed artifact
//! bytes. Because the CELLSERV encoding is canonical
//! (`to_bytes(from_bytes(b)) == b`), two artifacts hash equal iff they
//! serve byte-identical answers — which is what lets the CELLDELT delta
//! format chain on a base generation by hash alone, and lets operators
//! correlate an `index build` summary line with what a running daemon
//! reports at `/generation`.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over the full sealed artifact bytes.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The canonical 16-hex-digit rendering of a content hash, as printed
/// by `index build` and reported by the daemon's `/generation`.
pub fn hash_hex(hash: u64) -> String {
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv1a_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(content_hash(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_rendering_is_fixed_width() {
        assert_eq!(hash_hex(0), "0000000000000000");
        assert_eq!(hash_hex(0xdead_beef), "00000000deadbeef");
        assert_eq!(hash_hex(u64::MAX), "ffffffffffffffff");
    }

    #[test]
    fn single_byte_changes_change_the_hash() {
        let base = b"CELLSERV-something".to_vec();
        let h = content_hash(&base);
        for i in 0..base.len() {
            let mut flipped = base.clone();
            flipped[i] ^= 0x01;
            assert_ne!(content_hash(&flipped), h, "flip at {i}");
        }
    }
}
