//! Property suite for the serving layer.
//!
//! The load-bearing property: [`cellserve::FrozenIndex`]'s flat-array
//! longest-prefix match answers **exactly** like the pointer-chasing
//! [`netaddr::PrefixTrie`] for any prefix set and any probe address, in
//! both families — matched prefix and label, hit or miss. Both sides
//! are fed the same insertion sequence (duplicates resolve last-wins in
//! each), so the frozen index is a drop-in replacement for the trie on
//! the serving path.
//!
//! On top of that: the sealed artifact round-trips losslessly, its
//! encoding is canonical (re-encoding the decoded index is
//! byte-identical), and any single-byte corruption at any position is
//! rejected at load.

use proptest::prelude::*;

use cellserve::{Artifact, ArtifactFormat, AsClass, FrozenIndex, FrozenIndexBuilder, ServeLabel};
use netaddr::{Asn, Ipv4Net, Ipv6Net, PrefixTrie};

fn arb_label() -> impl Strategy<Value = ServeLabel> {
    (0u32..50, 0u8..3).prop_map(|(asn, c)| ServeLabel {
        asn: Asn(asn),
        class: match c {
            0 => AsClass::Dedicated,
            1 => AsClass::Mixed,
            _ => AsClass::Unknown,
        },
    })
}

/// Arbitrary v4 prefix as raw parts; `Ipv4Net::new` masks host bits.
fn arb_v4() -> impl Strategy<Value = (u32, u8, ServeLabel)> {
    (any::<u32>(), 0u8..=32, arb_label())
}

/// Arbitrary v6 prefix as raw parts.
fn arb_v6() -> impl Strategy<Value = (u128, u8, ServeLabel)> {
    (any::<u128>(), 0u8..=128, arb_label())
}

fn v4_index(entries: &[(u32, u8, ServeLabel)]) -> (PrefixTrie<ServeLabel>, FrozenIndex) {
    let mut trie = PrefixTrie::new();
    let mut builder = FrozenIndexBuilder::new();
    for &(addr, len, label) in entries {
        let net = Ipv4Net::new(addr, len).expect("len ≤ 32");
        trie.insert(net, label);
        builder.insert_v4(net, label);
    }
    (trie, builder.build())
}

fn v6_index(entries: &[(u128, u8, ServeLabel)]) -> (PrefixTrie<ServeLabel>, FrozenIndex) {
    let mut trie = PrefixTrie::new();
    let mut builder = FrozenIndexBuilder::new();
    for &(addr, len, label) in entries {
        let net = Ipv6Net::new(addr, len).expect("len ≤ 128");
        trie.insert_v6(net, label);
        builder.insert_v6(net, label);
    }
    (trie, builder.build())
}

/// Last address covered by a v6 prefix (the v4 type has `last()`
/// built in; v6 does not).
fn v6_last(net: Ipv6Net) -> u128 {
    let host_mask = if net.len() == 0 {
        u128::MAX
    } else {
        !(u128::MAX << (128 - net.len()))
    };
    net.addr() | host_mask
}

proptest! {
    /// Frozen LPM ≡ trie LPM for IPv4, probed at every entry's first
    /// and last covered address (guaranteed hits at varied depths) plus
    /// random addresses (mostly misses).
    #[test]
    fn frozen_lpm_matches_trie_lpm_v4(
        entries in prop::collection::vec(arb_v4(), 0..48),
        probes in prop::collection::vec(any::<u32>(), 0..64),
    ) {
        let (trie, frozen) = v4_index(&entries);
        let mut addrs = probes;
        for &(addr, len, _) in &entries {
            let net = Ipv4Net::new(addr, len).expect("len ≤ 32");
            addrs.push(net.first());
            addrs.push(net.last());
        }
        for a in addrs {
            let want = trie.lookup_v4(a).map(|(net, v)| (net, *v));
            prop_assert_eq!(frozen.lookup_v4(a), want, "addr {:#010x}", a);
        }
    }

    /// Frozen LPM ≡ trie LPM for IPv6.
    #[test]
    fn frozen_lpm_matches_trie_lpm_v6(
        entries in prop::collection::vec(arb_v6(), 0..48),
        probes in prop::collection::vec(any::<u128>(), 0..64),
    ) {
        let (trie, frozen) = v6_index(&entries);
        let mut addrs = probes;
        for &(addr, len, _) in &entries {
            let net = Ipv6Net::new(addr, len).expect("len ≤ 128");
            addrs.push(net.addr());
            addrs.push(v6_last(net));
        }
        for a in addrs {
            let want = trie.lookup_v6(a).map(|(net, v)| (net, *v));
            prop_assert_eq!(frozen.lookup_v6(a), want, "addr {:#034x}", a);
        }
    }

    /// Seal → load round-trips the index exactly, and the encoding is
    /// canonical: re-encoding the decoded index is byte-identical.
    #[test]
    fn artifact_roundtrip_is_lossless_and_canonical(
        v4_entries in prop::collection::vec(arb_v4(), 0..32),
        v6_entries in prop::collection::vec(arb_v6(), 0..32),
    ) {
        let mut builder = FrozenIndexBuilder::new();
        for &(addr, len, label) in &v4_entries {
            builder.insert_v4(Ipv4Net::new(addr, len).expect("len ≤ 32"), label);
        }
        for &(addr, len, label) in &v6_entries {
            builder.insert_v6(Ipv6Net::new(addr, len).expect("len ≤ 128"), label);
        }
        let index = builder.build();
        let bytes = Artifact::encode(&index, ArtifactFormat::V1);
        let decoded = Artifact::decode(&bytes);
        prop_assert_eq!(decoded.as_ref(), Ok(&index));
        prop_assert_eq!(
            Artifact::encode(&decoded.expect("just matched"), ArtifactFormat::V1),
            bytes
        );
    }

    /// Any single-byte corruption, at any position, with any nonzero
    /// XOR pattern, is rejected at load. (The unit suite additionally
    /// sweeps every byte position exhaustively.)
    #[test]
    fn random_single_byte_corruption_is_rejected(
        entries in prop::collection::vec(arb_v4(), 0..24),
        pos_seed in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let (_, frozen) = v4_index(&entries);
        let mut bytes = Artifact::encode(&frozen, ArtifactFormat::V1);
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= xor;
        prop_assert!(
            Artifact::decode(&bytes).is_err(),
            "flip {:#04x} at byte {} accepted", xor, pos
        );
    }
}
