//! Property suite for the v2 artifact format and the format-generic
//! load path.
//!
//! The tentpole properties of the CELLSERV v2 redesign:
//!
//! * **Format equivalence** — for any index, the zero-copy
//!   [`cellserve::MappedIndex`] over the v2 bytes, the
//!   [`cellserve::ArtifactHandle`]s opened from v1 and from v2 bytes,
//!   and the owned [`cellserve::FrozenIndex`] all answer every lookup
//!   identically, in both families, hit or miss.
//! * **Corruption rejection** — any single-byte corruption of a sealed
//!   v2 artifact, at any position with any nonzero XOR pattern, is
//!   rejected at load, as is truncation to any shorter length. (The
//!   unit suite in `v2.rs` additionally sweeps every byte position
//!   exhaustively.)
//! * **Migration determinism** — `index migrate`'s core
//!   (decode + re-encode) is byte-deterministic: v1→v2 equals a direct
//!   v2 seal, v1→v2→v1 is the identity, and re-encoding is stable.

use proptest::prelude::*;

use cellserve::{
    Artifact, ArtifactFormat, AsClass, FrozenIndexBuilder, IndexView, MappedIndex, ServeLabel,
};
use netaddr::{Asn, Ipv4Net, Ipv6Net};

fn arb_label() -> impl Strategy<Value = ServeLabel> {
    (0u32..50, 0u8..3).prop_map(|(asn, c)| ServeLabel {
        asn: Asn(asn),
        class: match c {
            0 => AsClass::Dedicated,
            1 => AsClass::Mixed,
            _ => AsClass::Unknown,
        },
    })
}

/// Arbitrary v4 prefix as raw parts; `Ipv4Net::new` masks host bits.
fn arb_v4() -> impl Strategy<Value = (u32, u8, ServeLabel)> {
    (any::<u32>(), 0u8..=32, arb_label())
}

/// Arbitrary v6 prefix as raw parts.
fn arb_v6() -> impl Strategy<Value = (u128, u8, ServeLabel)> {
    (any::<u128>(), 0u8..=128, arb_label())
}

fn build_index(
    v4_entries: &[(u32, u8, ServeLabel)],
    v6_entries: &[(u128, u8, ServeLabel)],
) -> cellserve::FrozenIndex {
    let mut builder = FrozenIndexBuilder::new();
    for &(addr, len, label) in v4_entries {
        builder.insert_v4(Ipv4Net::new(addr, len).expect("len ≤ 32"), label);
    }
    for &(addr, len, label) in v6_entries {
        builder.insert_v6(Ipv6Net::new(addr, len).expect("len ≤ 128"), label);
    }
    builder.build()
}

/// Last address covered by a v6 prefix.
fn v6_last(net: Ipv6Net) -> u128 {
    let host_mask = if net.len() == 0 {
        u128::MAX
    } else {
        !(u128::MAX << (128 - net.len()))
    };
    net.addr() | host_mask
}

proptest! {
    /// One index, four read paths — the owned `FrozenIndex`, the
    /// borrowed `MappedIndex` over the v2 bytes, and `ArtifactHandle`s
    /// from v1 and v2 bytes — must agree on every probe: the entries'
    /// first and last covered addresses (guaranteed hits at varied
    /// depths) plus random addresses (mostly misses).
    #[test]
    fn all_views_answer_identically(
        v4_entries in prop::collection::vec(arb_v4(), 0..32),
        v6_entries in prop::collection::vec(arb_v6(), 0..32),
        v4_probes in prop::collection::vec(any::<u32>(), 0..32),
        v6_probes in prop::collection::vec(any::<u128>(), 0..32),
    ) {
        let frozen = build_index(&v4_entries, &v6_entries);
        let v1_bytes = Artifact::encode(&frozen, ArtifactFormat::V1);
        let v2_bytes = Artifact::encode(&frozen, ArtifactFormat::V2);
        let mapped = MappedIndex::new(&v2_bytes).expect("freshly sealed v2 validates");
        let v1_handle = Artifact::from_bytes(&v1_bytes).expect("freshly sealed v1 loads");
        let v2_handle = Artifact::from_bytes(&v2_bytes).expect("freshly sealed v2 loads");
        prop_assert_eq!(v1_handle.format(), ArtifactFormat::V1);
        prop_assert_eq!(v2_handle.format(), ArtifactFormat::V2);

        let mut v4_addrs = v4_probes;
        for &(addr, len, _) in &v4_entries {
            let net = Ipv4Net::new(addr, len).expect("len ≤ 32");
            v4_addrs.push(net.first());
            v4_addrs.push(net.last());
        }
        for a in v4_addrs {
            let want = frozen.lookup_v4(a);
            prop_assert_eq!(mapped.lookup_v4(a), want, "mapped v4 {:#010x}", a);
            prop_assert_eq!(v1_handle.lookup_v4(a), want, "v1 handle v4 {:#010x}", a);
            prop_assert_eq!(v2_handle.lookup_v4(a), want, "v2 handle v4 {:#010x}", a);
        }

        let mut v6_addrs = v6_probes;
        for &(addr, len, _) in &v6_entries {
            let net = Ipv6Net::new(addr, len).expect("len ≤ 128");
            v6_addrs.push(net.addr());
            v6_addrs.push(v6_last(net));
        }
        for a in v6_addrs {
            let want = frozen.lookup_v6(a);
            prop_assert_eq!(mapped.lookup_v6(a), want, "mapped v6 {:#034x}", a);
            prop_assert_eq!(v1_handle.lookup_v6(a), want, "v1 handle v6 {:#034x}", a);
            prop_assert_eq!(v2_handle.lookup_v6(a), want, "v2 handle v6 {:#034x}", a);
        }

        // Aggregates agree too, across the IndexView and inherent APIs.
        prop_assert_eq!(mapped.prefix_counts(), frozen.prefix_counts());
        prop_assert_eq!(v2_handle.prefix_counts(), frozen.prefix_counts());
        prop_assert_eq!(mapped.len(), frozen.len());
        prop_assert_eq!(v2_handle.len(), frozen.len());
        prop_assert_eq!(
            IndexView::label_count(&mapped),
            IndexView::label_count(&frozen)
        );
    }

    /// Any single-byte corruption of the v2 bytes, at any position with
    /// any nonzero XOR pattern, is rejected — both by the borrowed view
    /// and through the sniffing `Artifact::from_bytes` entry point.
    #[test]
    fn random_single_byte_corruption_of_v2_is_rejected(
        v4_entries in prop::collection::vec(arb_v4(), 0..24),
        v6_entries in prop::collection::vec(arb_v6(), 0..8),
        pos_seed in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let frozen = build_index(&v4_entries, &v6_entries);
        let mut bytes = Artifact::encode(&frozen, ArtifactFormat::V2);
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= xor;
        prop_assert!(
            MappedIndex::new(&bytes).is_err(),
            "mapped view accepted flip {:#04x} at byte {}", xor, pos
        );
        prop_assert!(
            Artifact::from_bytes(&bytes).is_err(),
            "from_bytes accepted flip {:#04x} at byte {}", xor, pos
        );
    }

    /// Truncating the v2 bytes anywhere — including to an empty buffer —
    /// is rejected at load.
    #[test]
    fn truncation_of_v2_is_rejected(
        v4_entries in prop::collection::vec(arb_v4(), 0..24),
        cut_seed in any::<usize>(),
    ) {
        let frozen = build_index(&v4_entries, &[]);
        let bytes = Artifact::encode(&frozen, ArtifactFormat::V2);
        let cut = cut_seed % bytes.len();
        prop_assert!(
            MappedIndex::new(&bytes[..cut]).is_err(),
            "mapped view accepted truncation to {} of {} bytes", cut, bytes.len()
        );
        prop_assert!(
            Artifact::from_bytes(&bytes[..cut]).is_err(),
            "from_bytes accepted truncation to {} of {} bytes", cut, bytes.len()
        );
    }

    /// Migration is byte-deterministic: decoding the v1 seal and
    /// re-encoding as v2 equals sealing the index as v2 directly, the
    /// round trip v1→v2→v1 is the identity, and repeating either
    /// conversion changes nothing.
    #[test]
    fn migrate_roundtrip_is_byte_deterministic(
        v4_entries in prop::collection::vec(arb_v4(), 0..24),
        v6_entries in prop::collection::vec(arb_v6(), 0..8),
    ) {
        let frozen = build_index(&v4_entries, &v6_entries);
        let v1_bytes = Artifact::encode(&frozen, ArtifactFormat::V1);
        let v2_bytes = Artifact::encode(&frozen, ArtifactFormat::V2);

        let migrated_up = Artifact::encode(
            &Artifact::decode(&v1_bytes).expect("sealed v1 decodes"),
            ArtifactFormat::V2,
        );
        prop_assert_eq!(&migrated_up, &v2_bytes, "v1→v2 must equal a direct v2 seal");

        let migrated_down = Artifact::encode(
            &Artifact::decode(&migrated_up).expect("migrated v2 decodes"),
            ArtifactFormat::V1,
        );
        prop_assert_eq!(&migrated_down, &v1_bytes, "v1→v2→v1 must be the identity");

        let again = Artifact::encode(
            &Artifact::decode(&v1_bytes).expect("sealed v1 decodes"),
            ArtifactFormat::V2,
        );
        prop_assert_eq!(again, migrated_up, "repeating the conversion must be stable");
    }
}
