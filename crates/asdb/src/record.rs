use std::fmt;

use serde::{Deserialize, Serialize};

use netaddr::{Asn, Continent, CountryCode};

/// The access technology a customer line ultimately traverses.
///
/// This is the *ground truth* binary the paper's classifier estimates: a
/// connection is [`AccessType::Cellular`] iff its path crosses a cellular
/// radio link, regardless of the end device (a laptop tethered through a
/// phone is cellular; a phone on home WiFi is fixed).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AccessType {
    /// Path traverses a cellular radio (2G/3G/LTE…).
    Cellular,
    /// Fixed-line broadband (DSL, cable, FTTH, campus Ethernet…).
    Fixed,
}

impl AccessType {
    /// True for [`AccessType::Cellular`].
    #[inline]
    pub fn is_cellular(&self) -> bool {
        matches!(self, AccessType::Cellular)
    }
}

impl fmt::Display for AccessType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessType::Cellular => "cellular",
            AccessType::Fixed => "fixed",
        })
    }
}

/// CAIDA-style AS class labels, as used by the paper's heuristic 3
/// ("Exclude non-access ASes").
///
/// The original dataset labels ASes `Transit/Access`, `Content`, or
/// `Enterprise`; ASes absent from the dataset have no known class, which
/// the heuristic also treats as excludable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AsClass {
    /// Transit providers and access (eyeball) networks.
    TransitAccess,
    /// Content networks: CDNs, hosting, cloud platforms.
    Content,
    /// Enterprise networks.
    Enterprise,
    /// Not present in the classification dataset.
    Unknown,
}

impl AsClass {
    /// Does heuristic 3 keep an AS of this class in the cellular set?
    ///
    /// The paper filters out ASes "labeled as Content or had no known
    /// class"; Enterprise ASes survive the filter (they are simply rare in
    /// the candidate set).
    #[inline]
    pub fn passes_access_filter(&self) -> bool {
        matches!(self, AsClass::TransitAccess | AsClass::Enterprise)
    }
}

impl fmt::Display for AsClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AsClass::TransitAccess => "Transit/Access",
            AsClass::Content => "Content",
            AsClass::Enterprise => "Enterprise",
            AsClass::Unknown => "Unknown",
        })
    }
}

/// Hidden generative kind of an AS in the synthetic world.
///
/// This is ground truth that the measurement pipeline must *not* consult
/// (it does not exist for the real Internet); it drives the generator and
/// serves as the oracle for validation and shape tests.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AsKind {
    /// Offers only cellular access (may include home broadband delivered
    /// over a cellular link).
    DedicatedCellular,
    /// Offers both cellular and fixed-line access out of the same AS —
    /// the paper's "mixed networks".
    MixedAccess,
    /// Fixed-line access only.
    FixedOnly,
    /// Cloud/hosting/proxy infrastructure. Clients of connection-
    /// terminating mobile proxies surface here with cellular ConnectionType
    /// labels — the paper's AS-level false positives.
    CloudProxy,
    /// Content/CDN networks.
    ContentCdn,
    /// Enterprise network.
    Enterprise,
    /// Pure transit, no customers of its own.
    TransitOnly,
}

impl AsKind {
    /// Does the AS terminate any cellular customer traffic? (Oracle for
    /// "should the pipeline count this AS as cellular".)
    #[inline]
    pub fn is_cellular_access(&self) -> bool {
        matches!(self, AsKind::DedicatedCellular | AsKind::MixedAccess)
    }

    /// Does the AS serve end customers at all?
    #[inline]
    pub fn is_access(&self) -> bool {
        matches!(
            self,
            AsKind::DedicatedCellular | AsKind::MixedAccess | AsKind::FixedOnly
        )
    }

    /// The public CAIDA-style class this kind surfaces as. The mapping is
    /// lossy on purpose: the classifier only ever sees the [`AsClass`].
    pub fn public_class(&self) -> AsClass {
        match self {
            AsKind::DedicatedCellular | AsKind::MixedAccess | AsKind::FixedOnly => {
                AsClass::TransitAccess
            }
            AsKind::CloudProxy | AsKind::ContentCdn => AsClass::Content,
            AsKind::Enterprise => AsClass::Enterprise,
            AsKind::TransitOnly => AsClass::TransitAccess,
        }
    }
}

impl fmt::Display for AsKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AsKind::DedicatedCellular => "dedicated-cellular",
            AsKind::MixedAccess => "mixed-access",
            AsKind::FixedOnly => "fixed-only",
            AsKind::CloudProxy => "cloud-proxy",
            AsKind::ContentCdn => "content-cdn",
            AsKind::Enterprise => "enterprise",
            AsKind::TransitOnly => "transit-only",
        })
    }
}

/// One autonomous system's metadata record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AsRecord {
    /// The AS number.
    pub asn: Asn,
    /// Operator name (synthetic names at generation time).
    pub name: String,
    /// Registration country.
    pub country: CountryCode,
    /// Continent of the registration country.
    pub continent: Continent,
    /// Public CAIDA-style class (visible to the pipeline).
    pub class: AsClass,
    /// Hidden generative kind (oracle only — see [`AsKind`]).
    pub kind: AsKind,
}

impl AsRecord {
    /// Build a record, deriving the public class from the kind.
    pub fn new(
        asn: Asn,
        name: impl Into<String>,
        country: CountryCode,
        continent: Continent,
        kind: AsKind,
    ) -> Self {
        AsRecord {
            asn,
            name: name.into(),
            country,
            continent,
            class: kind.public_class(),
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_filter_matches_paper_heuristic() {
        assert!(AsClass::TransitAccess.passes_access_filter());
        assert!(AsClass::Enterprise.passes_access_filter());
        assert!(!AsClass::Content.passes_access_filter());
        assert!(!AsClass::Unknown.passes_access_filter());
    }

    #[test]
    fn kind_to_class_mapping_is_lossy() {
        // Both cellular and fixed access surface as the same public class —
        // this is exactly why the paper needs prefix-level classification.
        assert_eq!(
            AsKind::DedicatedCellular.public_class(),
            AsKind::FixedOnly.public_class()
        );
        assert_eq!(AsKind::CloudProxy.public_class(), AsClass::Content);
        assert_eq!(AsKind::Enterprise.public_class(), AsClass::Enterprise);
    }

    #[test]
    fn cellular_access_oracle() {
        assert!(AsKind::DedicatedCellular.is_cellular_access());
        assert!(AsKind::MixedAccess.is_cellular_access());
        for k in [
            AsKind::FixedOnly,
            AsKind::CloudProxy,
            AsKind::ContentCdn,
            AsKind::Enterprise,
            AsKind::TransitOnly,
        ] {
            assert!(!k.is_cellular_access(), "{k} should not be cellular access");
        }
    }

    #[test]
    fn record_new_derives_class() {
        let r = AsRecord::new(
            Asn(64500),
            "Test Mobile",
            CountryCode::literal("US"),
            Continent::NorthAmerica,
            AsKind::DedicatedCellular,
        );
        assert_eq!(r.class, AsClass::TransitAccess);
        assert_eq!(r.kind, AsKind::DedicatedCellular);
    }
}
