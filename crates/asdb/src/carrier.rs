use serde::{Deserialize, Serialize};

use netaddr::{Asn, Block24, Block48, DualPrefixTrie, Ipv4Net, Ipv6Net};

use crate::record::AccessType;

/// One labeled prefix in a carrier's ground-truth list.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum GroundTruthEntry {
    /// An IPv4 CIDR with its access label.
    V4(Ipv4Net, AccessType),
    /// An IPv6 CIDR with its access label.
    V6(Ipv6Net, AccessType),
}

impl GroundTruthEntry {
    /// The entry's access label.
    pub fn access(&self) -> AccessType {
        match self {
            GroundTruthEntry::V4(_, a) | GroundTruthEntry::V6(_, a) => *a,
        }
    }
}

/// A carrier's ground-truth subnet labeling, as provided to the authors by
/// three mobile operators (the paper's §4.2): a list of CIDRs, each marked
/// as belonging to the cellular or the fixed-line side of the network.
///
/// Validation joins these CIDRs against observed /24 and /48 blocks via a
/// longest-prefix-match trie: a block inherits the label of the most
/// specific ground-truth prefix covering it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CarrierGroundTruth {
    /// Operator codename ("Carrier A", …).
    pub name: String,
    /// ASNs the operator's address space lives in.
    pub asns: Vec<Asn>,
    /// Labeled CIDRs.
    pub entries: Vec<GroundTruthEntry>,
    #[serde(skip)]
    trie: Option<DualPrefixTrie<AccessType>>,
}

impl CarrierGroundTruth {
    /// Build from labeled entries.
    pub fn new(name: impl Into<String>, asns: Vec<Asn>, entries: Vec<GroundTruthEntry>) -> Self {
        let mut gt = CarrierGroundTruth {
            name: name.into(),
            asns,
            entries,
            trie: None,
        };
        gt.build_trie();
        gt
    }

    /// (Re)build the lookup trie; required after deserialization.
    pub fn build_trie(&mut self) {
        let mut trie = DualPrefixTrie::new();
        for e in &self.entries {
            match e {
                GroundTruthEntry::V4(net, a) => {
                    trie.insert_v4(*net, *a);
                }
                GroundTruthEntry::V6(net, a) => {
                    trie.insert_v6(*net, *a);
                }
            }
        }
        self.trie = Some(trie);
    }

    fn trie(&self) -> &DualPrefixTrie<AccessType> {
        self.trie
            .as_ref()
            .expect("trie is built in new(); call build_trie() after deserialization")
    }

    /// Ground-truth label for an IPv4 /24 block, if any prefix covers its
    /// base address. Blocks outside the carrier's space return `None`.
    pub fn label_block24(&self, block: Block24) -> Option<AccessType> {
        self.trie().lookup_v4(block.base_addr()).map(|(_, a)| *a)
    }

    /// Ground-truth label for an IPv6 /48 block.
    pub fn label_block48(&self, block: Block48) -> Option<AccessType> {
        self.trie().lookup_v6(block.base_addr()).map(|(_, a)| *a)
    }

    /// Every /24 block covered by the carrier's IPv4 ground truth, with its
    /// label. Prefixes longer than /24 contribute the single block that
    /// contains them (labels from the most specific prefix win via LPM).
    pub fn blocks24(&self) -> Vec<(Block24, AccessType)> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for e in &self.entries {
            if let GroundTruthEntry::V4(net, _) = e {
                if net.len() >= 24 {
                    let b = Block24::of_net(net);
                    if seen.insert(b) {
                        if let Some(a) = self.label_block24(b) {
                            out.push((b, a));
                        }
                    }
                } else {
                    for sub in net.subnets(24) {
                        let b = Block24::of_net(&sub);
                        if seen.insert(b) {
                            if let Some(a) = self.label_block24(b) {
                                out.push((b, a));
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Every /48 block covered by the carrier's IPv6 ground truth.
    pub fn blocks48(&self) -> Vec<(Block48, AccessType)> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for e in &self.entries {
            if let GroundTruthEntry::V6(net, _) = e {
                if net.len() >= 48 {
                    let b = Block48::of_net(net);
                    if seen.insert(b) {
                        if let Some(a) = self.label_block48(b) {
                            out.push((b, a));
                        }
                    }
                } else {
                    for sub in net.subnets(48) {
                        let b = Block48::of_net(&sub);
                        if seen.insert(b) {
                            if let Some(a) = self.label_block48(b) {
                                out.push((b, a));
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Counts of (cellular, fixed) /24 blocks in the ground truth.
    pub fn count_blocks24(&self) -> (usize, usize) {
        let mut cell = 0;
        let mut fixed = 0;
        for (_, a) in self.blocks24() {
            match a {
                AccessType::Cellular => cell += 1,
                AccessType::Fixed => fixed += 1,
            }
        }
        (cell, fixed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v4(s: &str, a: AccessType) -> GroundTruthEntry {
        GroundTruthEntry::V4(s.parse().unwrap(), a)
    }

    fn v6(s: &str, a: AccessType) -> GroundTruthEntry {
        GroundTruthEntry::V6(s.parse().unwrap(), a)
    }

    #[test]
    fn block_labels_via_lpm() {
        let gt = CarrierGroundTruth::new(
            "Carrier T",
            vec![Asn(64500)],
            vec![
                v4("10.0.0.0/14", AccessType::Fixed),
                // A more specific cellular carve-out inside the fixed range.
                v4("10.1.0.0/16", AccessType::Cellular),
            ],
        );
        let fixed_block = Block24::of_addr(0x0A000100);
        let cell_block = Block24::of_addr(0x0A010200);
        assert_eq!(gt.label_block24(fixed_block), Some(AccessType::Fixed));
        assert_eq!(gt.label_block24(cell_block), Some(AccessType::Cellular));
        // Outside the carrier's space.
        assert_eq!(gt.label_block24(Block24::of_addr(0xC0000200)), None);
    }

    #[test]
    fn blocks24_enumeration_respects_lpm() {
        let gt = CarrierGroundTruth::new(
            "Carrier T",
            vec![],
            vec![
                v4("10.0.0.0/22", AccessType::Fixed),
                v4("10.0.1.0/24", AccessType::Cellular),
            ],
        );
        let blocks = gt.blocks24();
        assert_eq!(blocks.len(), 4);
        let (cell, fixed) = gt.count_blocks24();
        assert_eq!((cell, fixed), (1, 3));
    }

    #[test]
    fn v6_blocks() {
        let gt = CarrierGroundTruth::new(
            "Carrier T",
            vec![],
            vec![v6("2001:db8::/46", AccessType::Cellular)],
        );
        let blocks = gt.blocks48();
        assert_eq!(blocks.len(), 4);
        assert!(blocks.iter().all(|(_, a)| a.is_cellular()));
        let b = Block48::of_addr(0x2001_0db8_0001_0000_0000_0000_0000_0000);
        assert_eq!(gt.label_block48(b), Some(AccessType::Cellular));
    }

    #[test]
    fn serde_round_trip_rebuilds_trie() {
        let gt = CarrierGroundTruth::new(
            "Carrier T",
            vec![Asn(64500)],
            vec![v4("192.0.2.0/24", AccessType::Cellular)],
        );
        let json = serde_json::to_string(&gt).unwrap();
        let mut back: CarrierGroundTruth = serde_json::from_str(&json).unwrap();
        back.build_trie();
        assert_eq!(
            back.label_block24(Block24::of_addr(0xC0000205)),
            Some(AccessType::Cellular)
        );
        assert_eq!(back.name, "Carrier T");
    }
}
