use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use netaddr::{Asn, Continent, CountryCode};

use crate::record::AsRecord;

/// An indexed collection of [`AsRecord`]s — the reproduction's stand-in for
/// the CAIDA AS classification dataset plus WHOIS-style registration data.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AsDatabase {
    records: Vec<AsRecord>,
    #[serde(skip)]
    index: HashMap<Asn, usize>,
}

impl AsDatabase {
    /// An empty database.
    pub fn new() -> Self {
        AsDatabase::default()
    }

    /// Build from a list of records. Later duplicates of the same ASN
    /// replace earlier ones.
    pub fn from_records(records: Vec<AsRecord>) -> Self {
        let mut db = AsDatabase::new();
        for r in records {
            db.insert(r);
        }
        db
    }

    /// Insert or replace a record, returning the previous record for the
    /// same ASN if any.
    pub fn insert(&mut self, record: AsRecord) -> Option<AsRecord> {
        match self.index.get(&record.asn) {
            Some(&i) => Some(std::mem::replace(&mut self.records[i], record)),
            None => {
                self.index.insert(record.asn, self.records.len());
                self.records.push(record);
                None
            }
        }
    }

    /// Look up a record by ASN.
    pub fn get(&self, asn: Asn) -> Option<&AsRecord> {
        if self.index.len() != self.records.len() {
            // Deserialized databases arrive without the index (it is
            // `serde(skip)`); fall back to a linear scan. `rebuild_index`
            // restores O(1) lookups.
            return self.records.iter().find(|r| r.asn == asn);
        }
        self.index.get(&asn).map(|&i| &self.records[i])
    }

    /// Rebuild the ASN index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .records
            .iter()
            .enumerate()
            .map(|(i, r)| (r.asn, i))
            .collect();
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the database holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate over all records in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &AsRecord> {
        self.records.iter()
    }

    /// All records registered in a given country.
    pub fn by_country(&self, country: CountryCode) -> impl Iterator<Item = &AsRecord> {
        self.records.iter().filter(move |r| r.country == country)
    }

    /// All records registered in a given continent.
    pub fn by_continent(&self, continent: Continent) -> impl Iterator<Item = &AsRecord> {
        self.records
            .iter()
            .filter(move |r| r.continent == continent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AsKind;

    fn rec(asn: u32, cc: &str, continent: Continent, kind: AsKind) -> AsRecord {
        AsRecord::new(
            Asn(asn),
            format!("op-{asn}"),
            CountryCode::literal(cc),
            continent,
            kind,
        )
    }

    #[test]
    fn insert_get_replace() {
        let mut db = AsDatabase::new();
        assert!(db
            .insert(rec(1, "US", Continent::NorthAmerica, AsKind::FixedOnly))
            .is_none());
        assert!(db
            .insert(rec(2, "DE", Continent::Europe, AsKind::MixedAccess))
            .is_none());
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(Asn(2)).unwrap().kind, AsKind::MixedAccess);
        // Replacing keeps len stable and returns the old record.
        let old = db
            .insert(rec(2, "DE", Continent::Europe, AsKind::DedicatedCellular))
            .unwrap();
        assert_eq!(old.kind, AsKind::MixedAccess);
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(Asn(2)).unwrap().kind, AsKind::DedicatedCellular);
        assert!(db.get(Asn(99)).is_none());
    }

    #[test]
    fn filters_by_geo() {
        let db = AsDatabase::from_records(vec![
            rec(1, "US", Continent::NorthAmerica, AsKind::FixedOnly),
            rec(2, "US", Continent::NorthAmerica, AsKind::DedicatedCellular),
            rec(3, "FR", Continent::Europe, AsKind::MixedAccess),
        ]);
        assert_eq!(db.by_country(CountryCode::literal("US")).count(), 2);
        assert_eq!(db.by_continent(Continent::Europe).count(), 1);
        assert_eq!(db.by_country(CountryCode::literal("JP")).count(), 0);
    }

    #[test]
    fn serde_round_trip_preserves_lookups() {
        let db = AsDatabase::from_records(vec![
            rec(10, "JP", Continent::Asia, AsKind::MixedAccess),
            rec(11, "JP", Continent::Asia, AsKind::ContentCdn),
        ]);
        let json = serde_json::to_string(&db).unwrap();
        let mut back: AsDatabase = serde_json::from_str(&json).unwrap();
        // Lookups work before and after index rebuild.
        assert_eq!(back.get(Asn(11)).unwrap().kind, AsKind::ContentCdn);
        back.rebuild_index();
        assert_eq!(back.get(Asn(10)).unwrap().kind, AsKind::MixedAccess);
        assert_eq!(back.len(), 2);
    }
}
