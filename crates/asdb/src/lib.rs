//! # asdb — AS metadata substrate
//!
//! The Cell Spotting pipeline needs two kinds of per-AS knowledge:
//!
//! 1. A **CAIDA-style AS classification** (`Transit/Access`, `Content`,
//!    `Enterprise`) — the paper's third AS-filtering heuristic excludes
//!    non-access networks using exactly this dataset. In the original study
//!    this is the CAIDA AS Classification dataset (2015-08-01 snapshot);
//!    here the records are produced by the synthetic world generator but
//!    carry the same schema and are consumed identically.
//! 2. **Carrier ground truth** for validation: labeled prefix lists from
//!    operators who told the authors which CIDRs are cellular and which are
//!    fixed-line (the paper's Carriers A, B, C in Table 3 / Figure 3).
//!
//! The crate deliberately separates what an analysis is *allowed to see*
//! (`AsClass`, name, country — public metadata) from the generator's hidden
//! ground truth (`AsKind`): the classifier in `cellspot` consumes only the
//! former, while validation and the test-suite oracles consume the latter.

mod carrier;
mod database;
mod record;

pub use carrier::{CarrierGroundTruth, GroundTruthEntry};
pub use database::AsDatabase;
pub use record::{AccessType, AsClass, AsKind, AsRecord};
