//! Aggregate-mode dataset generation: closed-form per-block draws.
//!
//! For a paper-scale world (~10M blocks) simulating individual page loads
//! is wasteful — the classifier only ever sees per-block sufficient
//! statistics. This module draws those statistics directly from the same
//! distributions the event-level simulator (`crate::events`) walks through
//! one page load at a time; `tests/` asserts the two modes converge.

use worldgen::World;

use crate::datasets::{BeaconDataset, BeaconRecord, DemandDataset, DemandRecord};
use crate::netinfo::{netinfo_share, DEC_2016};
use crate::stream::{block_stream, BEACON_SEED_TAG, DEMAND_SEED_TAG};
use worldgen::sampling::{binomial, lognormal_jitter, poisson, rng_for};

/// Collection-period label of the BEACON dataset (the paper's month).
pub const BEACON_PERIOD: &str = "2016-12";

/// Collection-period label of the DEMAND dataset (the smoothed week).
pub const DEMAND_PERIOD: &str = "2016-12-24..2016-12-31";

/// Knobs for dataset sampling (sensible defaults match the paper's
/// collection setup).
#[derive(Clone, Debug)]
pub struct CdnConfig {
    /// Month index for NetInfo availability (default: December 2016).
    pub month_index: u32,
    /// Among non-cellular NetInfo labels, the share reported as `wifi`
    /// (the rest split across ethernet/bluetooth/wimax — §4.1 footnote:
    /// those are rare because NetInfo browsers are mobile).
    pub wifi_share_noncell: f64,
    /// Number of daily demand snapshots smoothed together (§3.2: 7).
    pub smoothing_days: u32,
    /// Day-to-day demand jitter (log-normal sigma) smoothed away.
    pub daily_jitter: f64,
}

impl Default for CdnConfig {
    fn default() -> Self {
        CdnConfig {
            month_index: DEC_2016,
            wifi_share_noncell: 0.97,
            smoothing_days: 7,
            daily_jitter: 0.25,
        }
    }
}

/// Sample the BEACON dataset for a world.
///
/// Per block: total RUM hits are Poisson around the block's beacon weight
/// share of the global hit budget; NetInfo availability thins them by the
/// month's adoption share; the ConnectionType of each NetInfo hit is
/// cellular with the block's latent rate.
pub fn generate_beacons(world: &World, cfg: &CdnConfig) -> BeaconDataset {
    use rayon::prelude::*;
    let share = netinfo_share(cfg.month_index).total() / 100.0;
    let weight_sum: f64 = world
        .blocks
        .records
        .iter()
        .map(|r| r.beacon_weight as f64)
        .sum();
    // The world's hit budget counts NetInfo-enabled hits; scale up to all
    // RUM hits so `netinfo_hits ≈ budget` in expectation.
    let hits_budget = world.config.netinfo_hits_total / share;

    // Each block draws from its own RNG stream keyed by block identity,
    // not vector position: the sampled dataset depends only on the
    // world's contents and the seed, so neither record reordering (e.g.
    // after temporal evolution) nor the parallel iteration order changes
    // anything.
    let records: Vec<BeaconRecord> = world
        .blocks
        .records
        .par_iter()
        .filter_map(|b| {
            if b.beacon_weight <= 0.0 {
                return None;
            }
            let mut rng = rng_for(world.config.seed ^ BEACON_SEED_TAG, block_stream(b.block));
            let mean = hits_budget * b.beacon_weight as f64 / weight_sum;
            let hits_total = poisson(&mut rng, mean);
            if hits_total == 0 {
                return None;
            }
            let netinfo_hits = binomial(&mut rng, hits_total, share);
            let cellular_hits = binomial(&mut rng, netinfo_hits, b.cell_rate as f64);
            let noncell = netinfo_hits - cellular_hits;
            let wifi_hits = binomial(&mut rng, noncell, cfg.wifi_share_noncell);
            Some(BeaconRecord {
                block: b.block,
                asn: b.asn,
                hits_total,
                netinfo_hits,
                cellular_hits,
                wifi_hits,
                other_hits: noncell - wifi_hits,
            })
        })
        .collect();
    BeaconDataset::from_records(BEACON_PERIOD, records)
}

/// Sample the DEMAND dataset for a world: per block, `smoothing_days`
/// daily draws around the latent demand weight are averaged (mirroring
/// the platform's 7-day smoothing) and the result normalized to
/// 100,000 DU.
pub fn generate_demand(world: &World, cfg: &CdnConfig) -> DemandDataset {
    use rayon::prelude::*;
    let records: Vec<DemandRecord> = world
        .blocks
        .records
        .par_iter()
        .filter_map(|b| {
            if b.demand_weight <= 0.0 {
                return None;
            }
            let mut rng = rng_for(world.config.seed ^ DEMAND_SEED_TAG, block_stream(b.block));
            let mut acc = 0.0;
            for _ in 0..cfg.smoothing_days.max(1) {
                acc += b.demand_weight as f64 * lognormal_jitter(&mut rng, cfg.daily_jitter);
            }
            let du = acc / cfg.smoothing_days.max(1) as f64;
            Some(DemandRecord {
                block: b.block,
                asn: b.asn,
                du,
            })
        })
        .collect();
    DemandDataset::from_raw(DEMAND_PERIOD, records)
}

/// Convenience: both datasets with default CDN knobs.
pub fn generate_datasets(world: &World) -> (BeaconDataset, DemandDataset) {
    generate_datasets_observed(world, &cellobs::Observer::disabled())
}

/// [`generate_beacons`] under a span (`beacon_sample`) with record and
/// hit counters. Every reported quantity is a function of the world and
/// config alone, so counters are byte-identical across thread counts.
pub fn generate_beacons_observed(
    world: &World,
    cfg: &CdnConfig,
    obs: &cellobs::Observer,
) -> BeaconDataset {
    let mut span = obs.span("beacon_sample");
    let ds = generate_beacons(world, cfg);
    span.set_items(ds.len() as u64);
    drop(span);
    if obs.is_enabled() {
        obs.counter("cdnsim.beacon.records").add(ds.len() as u64);
        obs.counter("cdnsim.beacon.hits_total").add(ds.hits_total());
        obs.counter("cdnsim.beacon.netinfo_hits")
            .add(ds.netinfo_hits_total());
    }
    ds
}

/// [`generate_demand`] under a span (`demand_sample`) with record
/// counters and the normalized DU total as a gauge.
pub fn generate_demand_observed(
    world: &World,
    cfg: &CdnConfig,
    obs: &cellobs::Observer,
) -> DemandDataset {
    let mut span = obs.span("demand_sample");
    let ds = generate_demand(world, cfg);
    span.set_items(ds.len() as u64);
    drop(span);
    if obs.is_enabled() {
        obs.counter("cdnsim.demand.records").add(ds.len() as u64);
        obs.gauge("cdnsim.demand.total_du")
            .set(ds.total_du().round() as u64);
    }
    ds
}

/// Both datasets with default CDN knobs, instrumented.
pub fn generate_datasets_observed(
    world: &World,
    obs: &cellobs::Observer,
) -> (BeaconDataset, DemandDataset) {
    let cfg = CdnConfig::default();
    (
        generate_beacons_observed(world, &cfg, obs),
        generate_demand_observed(world, &cfg, obs),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use worldgen::WorldConfig;

    fn mini_world() -> World {
        World::generate(WorldConfig::mini())
    }

    #[test]
    fn beacon_netinfo_budget_is_respected() {
        let world = mini_world();
        let ds = generate_beacons(&world, &CdnConfig::default());
        let total = ds.netinfo_hits_total() as f64;
        let budget = world.config.netinfo_hits_total;
        assert!(
            (total - budget).abs() < budget * 0.05,
            "netinfo hits {total} vs budget {budget}"
        );
        // NetInfo share of all hits ≈ 13.2% (Fig. 1, Dec 2016).
        let share = total / ds.hits_total() as f64;
        assert!((0.115..0.15).contains(&share), "share {share:.4}");
    }

    #[test]
    fn hit_accounting_is_consistent() {
        let world = mini_world();
        let ds = generate_beacons(&world, &CdnConfig::default());
        for r in ds.iter() {
            assert!(r.netinfo_hits <= r.hits_total);
            assert_eq!(
                r.cellular_hits + r.wifi_hits + r.other_hits,
                r.netinfo_hits,
                "label counts must partition netinfo hits"
            );
        }
    }

    #[test]
    fn cellular_blocks_show_high_ratios() {
        let world = mini_world();
        let ds = generate_beacons(&world, &CdnConfig::default());
        let truth: std::collections::HashMap<_, _> =
            world.blocks.records.iter().map(|r| (r.block, r)).collect();
        let mut cell_hi = 0;
        let mut cell_n = 0;
        let mut fixed_hi = 0;
        let mut fixed_n = 0;
        for r in ds.iter() {
            let t = truth[&r.block];
            if let Some(ratio) = r.cellular_ratio() {
                if r.netinfo_hits < 20 {
                    continue; // small samples are noisy by design
                }
                if t.access.is_cellular() && t.cell_rate > 0.5 {
                    cell_n += 1;
                    if ratio > 0.5 {
                        cell_hi += 1;
                    }
                } else if !t.access.is_cellular() && t.role != worldgen::BlockRole::ProxyFront {
                    fixed_n += 1;
                    if ratio > 0.5 {
                        fixed_hi += 1;
                    }
                }
            }
        }
        assert!(
            cell_n > 20 && fixed_n > 100,
            "need samples: {cell_n}/{fixed_n}"
        );
        assert!(
            cell_hi as f64 / cell_n as f64 > 0.95,
            "cellular blocks with ratio>0.5: {cell_hi}/{cell_n}"
        );
        assert_eq!(fixed_hi, 0, "no well-sampled fixed block crosses 0.5");
    }

    #[test]
    fn demand_totals_and_smoothing() {
        let world = mini_world();
        let ds = generate_demand(&world, &CdnConfig::default());
        assert!((ds.total_du() - 100_000.0).abs() < 1e-6);
        // Smoothing: a 1-day snapshot is noisier than the 7-day average
        // relative to latent weights.
        let one_day = generate_demand(
            &world,
            &CdnConfig {
                smoothing_days: 1,
                ..Default::default()
            },
        );
        let latent_total: f64 = world.total_demand_weight();
        let err = |ds: &DemandDataset| -> f64 {
            let mut e = 0.0;
            let mut n = 0;
            for b in &world.blocks.records {
                if b.demand_weight as f64 > latent_total * 1e-5 {
                    let latent_du = b.demand_weight as f64 / latent_total * 100_000.0;
                    let got = ds.du(b.block);
                    e += ((got - latent_du) / latent_du).abs();
                    n += 1;
                }
            }
            e / n as f64
        };
        assert!(
            err(&ds) < err(&one_day),
            "7-day smoothing must reduce relative error"
        );
    }

    #[test]
    fn beacon_only_and_demand_only_blocks_exist() {
        let world = mini_world();
        let (beacons, demand) = generate_datasets(&world);
        let demand_only = demand
            .iter()
            .filter(|r| beacons.get(r.block).is_none())
            .count();
        let beacon_only = beacons
            .iter()
            .filter(|r| demand.get(r.block).is_none())
            .count();
        assert!(demand_only > 0, "Table 2: DEMAND sees blocks BEACON misses");
        assert!(beacon_only > 0, "Table 2: v6 BEACON blocks exceed DEMAND");
    }

    #[test]
    fn generation_is_deterministic() {
        let world = mini_world();
        let a = generate_beacons(&world, &CdnConfig::default());
        let b = generate_beacons(&world, &CdnConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn earlier_months_have_less_netinfo() {
        // Running the same platform in Sep 2015 (month 0) yields a far
        // smaller NetInfo share than Dec 2016 — Fig. 1's adoption curve
        // flows through dataset sampling.
        let world = mini_world();
        let dec = generate_beacons(&world, &CdnConfig::default());
        let sep = generate_beacons(
            &world,
            &CdnConfig {
                month_index: 0,
                ..Default::default()
            },
        );
        let share =
            |ds: &crate::BeaconDataset| ds.netinfo_hits_total() as f64 / ds.hits_total() as f64;
        assert!(
            share(&sep) < share(&dec) * 0.5,
            "Sep 2015 share {:.3} vs Dec 2016 {:.3}",
            share(&sep),
            share(&dec)
        );
    }

    #[test]
    fn zero_smoothing_days_is_guarded() {
        let world = mini_world();
        let ds = generate_demand(
            &world,
            &CdnConfig {
                smoothing_days: 0,
                ..Default::default()
            },
        );
        assert!((ds.total_du() - 100_000.0).abs() < 1e-6);
        assert!(!ds.is_empty());
    }

    #[test]
    fn wifi_share_controls_noncellular_split() {
        let world = mini_world();
        let all_wifi = generate_beacons(
            &world,
            &CdnConfig {
                wifi_share_noncell: 1.0,
                ..Default::default()
            },
        );
        let other: u64 = all_wifi.iter().map(|r| r.other_hits).sum();
        assert_eq!(other, 0, "wifi share 1.0 leaves no other labels");
        let no_wifi = generate_beacons(
            &world,
            &CdnConfig {
                wifi_share_noncell: 0.0,
                ..Default::default()
            },
        );
        let wifi: u64 = no_wifi.iter().map(|r| r.wifi_hits).sum();
        assert_eq!(wifi, 0, "wifi share 0.0 leaves no wifi labels");
    }
}
