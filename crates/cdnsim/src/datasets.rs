//! The two observable datasets of the study (Table 2).

use netaddr::{Asn, BlockId};
use serde::{Deserialize, Serialize};

/// Per-block aggregate of RUM beacon hits for the collection month.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BeaconRecord {
    /// The /24 or /48 block the client IPs aggregate into.
    pub block: BlockId,
    /// Origin AS (the CDN maps client IPs through BGP feeds).
    pub asn: Asn,
    /// All beacon hits, regardless of NetInfo availability.
    pub hits_total: u64,
    /// Hits that carried Network Information API data.
    pub netinfo_hits: u64,
    /// NetInfo hits whose ConnectionType was `cellular`.
    pub cellular_hits: u64,
    /// NetInfo hits whose ConnectionType was `wifi`.
    pub wifi_hits: u64,
    /// NetInfo hits with any other ConnectionType.
    pub other_hits: u64,
}

impl BeaconRecord {
    /// The cellular ratio: cellular hits over NetInfo-enabled hits, or
    /// `None` when no hit carried NetInfo data (the block cannot be
    /// classified).
    pub fn cellular_ratio(&self) -> Option<f64> {
        if self.netinfo_hits == 0 {
            None
        } else {
            Some(self.cellular_hits as f64 / self.netinfo_hits as f64)
        }
    }
}

/// The BEACON dataset: one month of RUM beacons aggregated per block,
/// sorted by block id.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BeaconDataset {
    /// Collection period label (e.g. `2016-12`).
    pub period: String,
    records: Vec<BeaconRecord>,
}

impl BeaconDataset {
    /// Build from unsorted records: sorts by block and merges duplicate
    /// blocks by summing their hit counters (first record's AS wins).
    ///
    /// The generators never emit duplicates, but CSV inputs reaching the
    /// CLI can — silently keeping both rows would corrupt the merge join
    /// in `BlockIndex::build`, so duplicates are folded into one record
    /// here, in release builds too.
    pub fn from_records(period: impl Into<String>, mut records: Vec<BeaconRecord>) -> Self {
        records.sort_by_key(|r| r.block);
        records.dedup_by(|dup, keep| {
            if dup.block != keep.block {
                return false;
            }
            keep.hits_total += dup.hits_total;
            keep.netinfo_hits += dup.netinfo_hits;
            keep.cellular_hits += dup.cellular_hits;
            keep.wifi_hits += dup.wifi_hits;
            keep.other_hits += dup.other_hits;
            true
        });
        BeaconDataset {
            period: period.into(),
            records,
        }
    }

    /// Number of blocks observed.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no blocks were observed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, ordered by block id.
    pub fn iter(&self) -> impl Iterator<Item = &BeaconRecord> {
        self.records.iter()
    }

    /// Binary-search lookup by block.
    pub fn get(&self, block: BlockId) -> Option<&BeaconRecord> {
        self.records
            .binary_search_by_key(&block, |r| r.block)
            .ok()
            .map(|i| &self.records[i])
    }

    /// (IPv4, IPv6) block counts — Table 2's BEACON row.
    pub fn block_counts(&self) -> (usize, usize) {
        let v4 = self.records.iter().filter(|r| r.block.is_v4()).count();
        (v4, self.records.len() - v4)
    }

    /// Total NetInfo-enabled hits across the dataset.
    pub fn netinfo_hits_total(&self) -> u64 {
        self.records.iter().map(|r| r.netinfo_hits).sum()
    }

    /// Total beacon hits across the dataset.
    pub fn hits_total(&self) -> u64 {
        self.records.iter().map(|r| r.hits_total).sum()
    }
}

/// Per-block demand after normalization: Demand Units out of 100,000
/// across the whole platform (1,000 DU = 1% of global request demand).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DemandRecord {
    /// The /24 or /48 block.
    pub block: BlockId,
    /// Origin AS.
    pub asn: Asn,
    /// Normalized Demand Units.
    pub du: f64,
}

/// The DEMAND dataset: one smoothed week of platform-wide request demand,
/// sorted by block id and normalized to 100,000 DU.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DemandDataset {
    /// Collection period label (e.g. `2016-12-24..2016-12-31`).
    pub period: String,
    records: Vec<DemandRecord>,
}

/// Total Demand Units across the platform (`1,000 DU = 1%`).
pub const TOTAL_DU: f64 = 100_000.0;

impl DemandDataset {
    /// Build from unsorted, unnormalized records: sorts by block, merges
    /// duplicate blocks by summing their demand (first record's AS wins),
    /// and rescales so the dataset sums to [`TOTAL_DU`].
    ///
    /// Sorting happens *before* the normalization sum so the float total —
    /// and therefore every normalized DU value — depends only on the
    /// multiset of records, never on input order. The streaming ingest
    /// engine (`cellstream`) relies on this to reproduce batch output
    /// bit-for-bit from shard-merged records.
    pub fn from_raw(period: impl Into<String>, mut records: Vec<DemandRecord>) -> Self {
        records.retain(|r| r.du > 0.0);
        records.sort_by_key(|r| r.block);
        records.dedup_by(|dup, keep| {
            if dup.block != keep.block {
                return false;
            }
            keep.du += dup.du;
            true
        });
        let total: f64 = records.iter().map(|r| r.du).sum();
        if total > 0.0 {
            let scale = TOTAL_DU / total;
            for r in &mut records {
                r.du *= scale;
            }
        }
        DemandDataset {
            period: period.into(),
            records,
        }
    }

    /// Number of blocks with demand.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, ordered by block id.
    pub fn iter(&self) -> impl Iterator<Item = &DemandRecord> {
        self.records.iter()
    }

    /// Binary-search lookup by block.
    pub fn get(&self, block: BlockId) -> Option<&DemandRecord> {
        self.records
            .binary_search_by_key(&block, |r| r.block)
            .ok()
            .map(|i| &self.records[i])
    }

    /// Demand Units for a block, zero when absent.
    pub fn du(&self, block: BlockId) -> f64 {
        self.get(block).map(|r| r.du).unwrap_or(0.0)
    }

    /// (IPv4, IPv6) block counts — Table 2's DEMAND row.
    pub fn block_counts(&self) -> (usize, usize) {
        let v4 = self.records.iter().filter(|r| r.block.is_v4()).count();
        (v4, self.records.len() - v4)
    }

    /// Sum of DU over the dataset (≈ [`TOTAL_DU`] after normalization).
    pub fn total_du(&self) -> f64 {
        self.records.iter().map(|r| r.du).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netaddr::{Block24, Block48};

    fn b4(i: u32) -> BlockId {
        BlockId::V4(Block24::from_index(i))
    }

    fn b6(i: u64) -> BlockId {
        BlockId::V6(Block48::from_index(i))
    }

    #[test]
    fn beacon_ratio_handles_empty_netinfo() {
        let r = BeaconRecord {
            block: b4(1),
            asn: Asn(64500),
            hits_total: 10,
            netinfo_hits: 0,
            cellular_hits: 0,
            wifi_hits: 0,
            other_hits: 0,
        };
        assert_eq!(r.cellular_ratio(), None);
        let r = BeaconRecord {
            netinfo_hits: 8,
            cellular_hits: 6,
            ..r
        };
        assert!((r.cellular_ratio().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn beacon_dataset_sorts_and_looks_up() {
        let mk = |i: u32| BeaconRecord {
            block: b4(i),
            asn: Asn(1),
            hits_total: i as u64,
            netinfo_hits: 0,
            cellular_hits: 0,
            wifi_hits: 0,
            other_hits: 0,
        };
        let ds = BeaconDataset::from_records("t", vec![mk(5), mk(1), mk(3)]);
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.get(b4(3)).unwrap().hits_total, 3);
        assert!(ds.get(b4(2)).is_none());
        let blocks: Vec<_> = ds.iter().map(|r| r.block).collect();
        assert_eq!(blocks, vec![b4(1), b4(3), b4(5)]);
    }

    #[test]
    fn demand_normalizes_to_100k() {
        let ds = DemandDataset::from_raw(
            "w",
            vec![
                DemandRecord {
                    block: b4(1),
                    asn: Asn(1),
                    du: 3.0,
                },
                DemandRecord {
                    block: b6(2),
                    asn: Asn(2),
                    du: 1.0,
                },
                DemandRecord {
                    block: b4(9),
                    asn: Asn(1),
                    du: 0.0, // dropped
                },
            ],
        );
        assert_eq!(ds.len(), 2);
        assert!((ds.total_du() - TOTAL_DU).abs() < 1e-6);
        assert!((ds.du(b4(1)) - 75_000.0).abs() < 1e-6);
        assert_eq!(ds.du(b4(9)), 0.0);
        assert_eq!(ds.block_counts(), (1, 1));
    }

    #[test]
    fn duplicate_beacon_blocks_are_merged() {
        let mk = |asn: u32, hits: u64, cell: u64| BeaconRecord {
            block: b4(7),
            asn: Asn(asn),
            hits_total: hits,
            netinfo_hits: hits,
            cellular_hits: cell,
            wifi_hits: hits - cell,
            other_hits: 0,
        };
        let ds = BeaconDataset::from_records("t", vec![mk(1, 10, 4), mk(2, 30, 6)]);
        assert_eq!(ds.len(), 1);
        let r = ds.get(b4(7)).unwrap();
        assert_eq!(r.asn, Asn(1), "first record's AS wins");
        assert_eq!(r.hits_total, 40);
        assert_eq!(r.netinfo_hits, 40);
        assert_eq!(r.cellular_hits, 10);
        assert_eq!(r.wifi_hits, 30);
        assert_eq!(
            r.cellular_hits + r.wifi_hits + r.other_hits,
            r.netinfo_hits,
            "merged labels still partition netinfo hits"
        );
    }

    #[test]
    fn duplicate_demand_blocks_are_merged_before_normalization() {
        let mk = |i: u32, du: f64| DemandRecord {
            block: b4(i),
            asn: Asn(1),
            du,
        };
        let ds = DemandDataset::from_raw("t", vec![mk(1, 2.0), mk(2, 1.0), mk(1, 1.0)]);
        assert_eq!(ds.len(), 2);
        // Merged block 1 carries 3/4 of the raw demand.
        assert!((ds.du(b4(1)) - 75_000.0).abs() < 1e-6);
        assert!((ds.total_du() - TOTAL_DU).abs() < 1e-6);
    }

    #[test]
    fn demand_normalization_is_input_order_independent() {
        let mk = |i: u32, du: f64| DemandRecord {
            block: b4(i),
            asn: Asn(1),
            du,
        };
        let rows = vec![mk(3, 0.1234), mk(1, 9.77), mk(2, 0.001), mk(5, 3.3)];
        let mut rev = rows.clone();
        rev.reverse();
        let a = DemandDataset::from_raw("t", rows);
        let b = DemandDataset::from_raw("t", rev);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.block, y.block);
            assert_eq!(
                x.du.to_bits(),
                y.du.to_bits(),
                "bit-identical normalization"
            );
        }
    }

    #[test]
    fn serde_round_trip() {
        let ds = DemandDataset::from_raw(
            "w",
            vec![DemandRecord {
                block: b4(7),
                asn: Asn(7),
                du: 2.0,
            }],
        );
        let json = serde_json::to_string(&ds).unwrap();
        let back: DemandDataset = serde_json::from_str(&json).unwrap();
        assert!((back.du(b4(7)) - TOTAL_DU).abs() < 1e-6);
    }
}
