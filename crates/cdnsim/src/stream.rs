//! Per-block RNG stream keys.

use netaddr::BlockId;

/// A stable 64-bit stream id for a block: IPv4 /24 indices occupy the low
/// 24 bits; IPv6 /48 indices (48 bits) are tagged into a disjoint range.
/// Sampling keyed by this value depends only on *which* block is drawn,
/// never on where it sits in a record vector.
pub(crate) fn block_stream(block: BlockId) -> u64 {
    match block {
        BlockId::V4(b) => b.index() as u64,
        BlockId::V6(b) => (1u64 << 56) | b.index(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netaddr::{Block24, Block48};

    #[test]
    fn families_never_collide() {
        let v4 = block_stream(BlockId::V4(Block24::from_index(0x00FF_FFFF)));
        let v6 = block_stream(BlockId::V6(Block48::from_index(0x00FF_FFFF)));
        assert_ne!(v4, v6);
        // Distinct blocks → distinct streams within each family.
        assert_ne!(
            block_stream(BlockId::V4(Block24::from_index(1))),
            block_stream(BlockId::V4(Block24::from_index(2)))
        );
        assert_ne!(
            block_stream(BlockId::V6(Block48::from_index(1))),
            block_stream(BlockId::V6(Block48::from_index(2)))
        );
    }
}
