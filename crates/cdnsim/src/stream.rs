//! Per-block RNG stream keys.
//!
//! Public because the streaming ingest subsystem (`cellstream`) keys its
//! shard routing and sketch hashing off the same stable per-block ids the
//! dataset samplers use — one identity, everywhere.

use netaddr::BlockId;

/// Seed tag of the BEACON sampling stream: XORed into the world seed so
/// beacon draws never collide with other samplers on the same block.
pub(crate) const BEACON_SEED_TAG: u64 = 0xBEAC_0000_0000_0000;

/// Seed tag of the DEMAND sampling stream.
pub(crate) const DEMAND_SEED_TAG: u64 = 0xDE3A_0000_0000_0000;

/// A stable 64-bit stream id for a block: IPv4 /24 indices occupy the low
/// 24 bits; IPv6 /48 indices (48 bits) are tagged into a disjoint range.
/// Sampling keyed by this value depends only on *which* block is drawn,
/// never on where it sits in a record vector.
pub fn block_stream(block: BlockId) -> u64 {
    match block {
        BlockId::V4(b) => b.index() as u64,
        BlockId::V6(b) => (1u64 << 56) | b.index(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netaddr::{Block24, Block48};

    #[test]
    fn families_never_collide() {
        let v4 = block_stream(BlockId::V4(Block24::from_index(0x00FF_FFFF)));
        let v6 = block_stream(BlockId::V6(Block48::from_index(0x00FF_FFFF)));
        assert_ne!(v4, v6);
        // Distinct blocks → distinct streams within each family.
        assert_ne!(
            block_stream(BlockId::V4(Block24::from_index(1))),
            block_stream(BlockId::V4(Block24::from_index(2)))
        );
        assert_ne!(
            block_stream(BlockId::V6(Block48::from_index(1))),
            block_stream(BlockId::V6(Block48::from_index(2)))
        );
    }
}
