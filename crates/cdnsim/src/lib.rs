//! # cdnsim — the CDN measurement platform
//!
//! The study's observational substrate: this crate samples the two
//! datasets of the paper's Table 2 from a [`worldgen::World`]'s latent
//! ground truth.
//!
//! * **BEACON** — one month of Real-User-Monitoring beacon hits, per /24
//!   and /48 block, with Network Information API labels. Availability
//!   follows the Fig. 1 adoption curve (13.2% of hits in December 2016,
//!   dominated by Google browsers); labels carry the tethering and
//!   interface-switch noise of §3.1.
//! * **DEMAND** — one smoothed week of platform-wide request demand,
//!   normalized to 100,000 unit-less Demand Units (1,000 DU = 1%).
//!
//! Two generation modes exist and are tested to converge: aggregate mode
//! ([`generate_beacons`]/[`generate_demand`]) draws per-block sufficient
//! statistics in closed form for paper-scale worlds; event mode
//! ([`simulate_events`]) walks the full causal chain — client device,
//! browser, tether state, page load, beacon — one event at a time.
//!
//! A third view, [`EventSource`], re-exposes aggregate mode as a lazy,
//! epoch-sliced event stream for the streaming ingest subsystem
//! (`cellstream`): folding the full stream reproduces the batch datasets
//! bit for bit, at any downstream shard count.

mod aggregate;
mod connection;
mod datasets;
mod error;
mod events;
mod netinfo;
mod source;
pub mod stream;

pub use aggregate::{
    generate_beacons, generate_beacons_observed, generate_datasets, generate_datasets_observed,
    generate_demand, generate_demand_observed, CdnConfig, BEACON_PERIOD, DEMAND_PERIOD,
};
pub use connection::{Browser, ConnectionType, BROWSERS};
pub use datasets::{BeaconDataset, BeaconRecord, DemandDataset, DemandRecord, TOTAL_DU};
pub use error::CdnError;
pub use events::{
    aggregate_events, simulate_events, simulate_events_observed, BeaconEvent, EventSimConfig,
};
pub use netinfo::{browser_mix, netinfo_share, netinfo_timeline, MonthShare, DEC_2016, JUN_2017};
pub use source::{
    BeaconDelta, DemandDay, EpochGate, EventSource, SourceError, SourceErrorKind, StreamEvent,
};
