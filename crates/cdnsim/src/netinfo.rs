//! Network Information API adoption model (Fig. 1).
//!
//! Fig. 1 plots, per month from September 2015 to June 2017, the share of
//! RUM beacon hits that carried NetInfo data, stacked by browser. The
//! shape is a steady climb driven almost entirely by Google-developed
//! browsers (96.7% of enabled requests in December 2016), landing at
//! 13.2% in December 2016 and ~15% by June 2017.

use serde::{Deserialize, Serialize};

use crate::connection::Browser;

/// One month's NetInfo-enabled share of beacon hits, by browser.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MonthShare {
    /// Months since 2015-09 (0 = Sep 2015; 15 = Dec 2016; 21 = Jun 2017).
    pub month_index: u32,
    /// Share from Chrome Mobile, in percent of all beacon hits.
    pub chrome_mobile: f64,
    /// Share from Android WebKit.
    pub android_webkit: f64,
    /// Share from Firefox Mobile.
    pub firefox_mobile: f64,
    /// Share from desktop Chrome.
    pub chrome_desktop: f64,
}

impl MonthShare {
    /// Total NetInfo-enabled share for the month, percent.
    pub fn total(&self) -> f64 {
        self.chrome_mobile + self.android_webkit + self.firefox_mobile + self.chrome_desktop
    }

    /// Human-readable `YYYY-MM` for the month index.
    pub fn label(&self) -> String {
        let months_from_jan2015 = 8 + self.month_index; // Sep 2015 = 8
        let year = 2015 + months_from_jan2015 / 12;
        let month = months_from_jan2015 % 12 + 1;
        format!("{year}-{month:02}")
    }
}

/// Month index of December 2016 (the BEACON collection month).
pub const DEC_2016: u32 = 15;
/// Month index of June 2017 (Fig. 1's right edge).
pub const JUN_2017: u32 = 21;

/// NetInfo-enabled share of beacon hits for a given month index.
///
/// A saturating-growth curve calibrated so Dec 2016 ≈ 13.2% and
/// Jun 2017 ≈ 15%, starting from ≈5% in Sep 2015 (Chrome for Android had
/// shipped NetInfo a year earlier, so adoption starts non-zero).
pub fn netinfo_share(month_index: u32) -> MonthShare {
    let t = month_index as f64;
    // Logistic toward a ~16.2% ceiling, calibrated through the two points
    // the paper reports: 13.2% at Dec 2016 (t=15) and 15% at Jun 2017.
    let total = 16.2 / (1.0 + (-(t - 6.47) / 5.75).exp());
    // Browser composition: Chrome Mobile grows at WebKit's expense as
    // devices upgrade; Google browsers hold ≈96.7% of enabled hits.
    let webkit_frac = 0.30 * (1.0 - t / 30.0).max(0.15);
    let firefox_frac = 0.02;
    let desktop_frac = 0.013;
    let chrome_frac = 1.0 - webkit_frac - firefox_frac - desktop_frac;
    MonthShare {
        month_index,
        chrome_mobile: total * chrome_frac,
        android_webkit: total * webkit_frac,
        firefox_mobile: total * firefox_frac,
        chrome_desktop: total * desktop_frac,
    }
}

/// The full Fig. 1 timeline (Sep 2015 … Jun 2017).
pub fn netinfo_timeline() -> Vec<MonthShare> {
    (0..=JUN_2017).map(netinfo_share).collect()
}

/// Beacon-hit mix across browsers for a month: the probability that a
/// beacon hit comes from each browser family. NetInfo-enabled families
/// carry exactly the Fig. 1 shares; the rest splits between Safari and
/// other non-supporting browsers.
pub fn browser_mix(month_index: u32) -> Vec<(Browser, f64)> {
    let s = netinfo_share(month_index);
    let enabled = s.total() / 100.0;
    let rest = 1.0 - enabled;
    vec![
        (Browser::ChromeMobile, s.chrome_mobile / 100.0),
        (Browser::AndroidWebkit, s.android_webkit / 100.0),
        (Browser::FirefoxMobile, s.firefox_mobile / 100.0),
        (Browser::ChromeDesktop, s.chrome_desktop / 100.0),
        (Browser::SafariMobile, rest * 0.35),
        (Browser::Other, rest * 0.65),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn december_2016_matches_paper() {
        let s = netinfo_share(DEC_2016);
        assert!(
            (12.2..14.2).contains(&s.total()),
            "Dec 2016 share {:.2}% (paper: 13.2%)",
            s.total()
        );
        assert_eq!(s.label(), "2016-12");
    }

    #[test]
    fn june_2017_matches_paper() {
        let s = netinfo_share(JUN_2017);
        assert!(
            (14.0..16.0).contains(&s.total()),
            "Jun 2017 share {:.2}% (paper: 15%)",
            s.total()
        );
        assert_eq!(s.label(), "2017-06");
    }

    #[test]
    fn google_browsers_dominate() {
        let s = netinfo_share(DEC_2016);
        let google = s.chrome_mobile + s.android_webkit + s.chrome_desktop;
        assert!(
            google / s.total() > 0.95,
            "paper: 96.7% of enabled hits are Google browsers"
        );
        assert!(s.chrome_mobile > s.android_webkit);
    }

    #[test]
    fn timeline_is_monotonic() {
        let tl = netinfo_timeline();
        assert_eq!(tl.len(), 22);
        for w in tl.windows(2) {
            assert!(w[1].total() >= w[0].total(), "adoption never regresses");
        }
        assert_eq!(tl[0].label(), "2015-09");
    }

    #[test]
    fn browser_mix_sums_to_one() {
        for m in [0, DEC_2016, JUN_2017] {
            let mix = browser_mix(m);
            let total: f64 = mix.iter().map(|(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-9, "month {m}: mix sums to {total}");
            assert!(mix.iter().all(|(_, p)| *p >= 0.0));
        }
    }
}
