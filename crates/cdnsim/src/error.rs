//! The crate's unified error type (hand-rolled `Display`/`Error` impls
//! in the workspace's house style — the `thiserror` derive is
//! deliberately not a dependency).

use std::fmt;

use crate::source::SourceError;

/// Why the measurement platform could not produce data.
#[derive(Clone, Debug, PartialEq)]
pub enum CdnError {
    /// An event source failed to serve an epoch (stalled or dead
    /// collector). Wraps [`SourceError`], which stays the fine-grained
    /// type on [`crate::EventSource::try_epoch`] itself.
    Source(SourceError),
    /// A sampling knob is out of range.
    Config(String),
}

impl fmt::Display for CdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdnError::Source(e) => write!(f, "event source error: {e}"),
            CdnError::Config(why) => write!(f, "invalid cdn configuration: {why}"),
        }
    }
}

impl std::error::Error for CdnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CdnError::Source(e) => Some(e),
            CdnError::Config(_) => None,
        }
    }
}

impl From<SourceError> for CdnError {
    fn from(e: SourceError) -> Self {
        CdnError::Source(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceErrorKind;

    #[test]
    fn wraps_source_errors_with_chain() {
        let inner = SourceError {
            epoch: 3,
            kind: SourceErrorKind::Stall,
        };
        let e: CdnError = inner.into();
        assert!(e.to_string().contains("epoch 3"));
        assert!(std::error::Error::source(&e).is_some());
        let c = CdnError::Config("page_loads must be positive".into());
        assert!(c.to_string().contains("invalid cdn configuration"));
        assert!(std::error::Error::source(&c).is_none());
    }
}
