use std::fmt;

use serde::{Deserialize, Serialize};

/// The `ConnectionType` enumeration exposed by the Network Information
/// API (§3.1): the browser's view of the active network interface.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ConnectionType {
    /// Cellular radio (2G/3G/LTE).
    Cellular,
    /// WiFi — including tethered devices whose upstream is cellular, which
    /// is the API's dominant mislabeling mode.
    Wifi,
    /// Wired Ethernet.
    Ethernet,
    /// Bluetooth PAN.
    Bluetooth,
    /// WiMAX (rare).
    Wimax,
    /// The API reported `unknown`.
    Unknown,
}

impl ConnectionType {
    /// True for [`ConnectionType::Cellular`] — the only label the paper's
    /// classifier counts toward the cellular ratio.
    #[inline]
    pub fn is_cellular(&self) -> bool {
        matches!(self, ConnectionType::Cellular)
    }
}

impl fmt::Display for ConnectionType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConnectionType::Cellular => "cellular",
            ConnectionType::Wifi => "wifi",
            ConnectionType::Ethernet => "ethernet",
            ConnectionType::Bluetooth => "bluetooth",
            ConnectionType::Wimax => "wimax",
            ConnectionType::Unknown => "unknown",
        })
    }
}

/// Browser families relevant to Network Information API availability
/// (Fig. 1: Chrome Mobile and Android WebKit dominate enabled hits).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Browser {
    /// Chrome for Android (NetInfo since v38, Oct 2014).
    ChromeMobile,
    /// The legacy native Android WebKit browser.
    AndroidWebkit,
    /// Firefox Mobile.
    FirefoxMobile,
    /// Desktop Chrome (NetInfo-enabled, small share of mobile networks).
    ChromeDesktop,
    /// Mobile Safari — no NetInfo support at collection time.
    SafariMobile,
    /// Everything else without NetInfo support.
    Other,
}

/// All browser families, for iteration in reports.
pub const BROWSERS: [Browser; 6] = [
    Browser::ChromeMobile,
    Browser::AndroidWebkit,
    Browser::FirefoxMobile,
    Browser::ChromeDesktop,
    Browser::SafariMobile,
    Browser::Other,
];

impl Browser {
    /// Whether this browser implements the Network Information API.
    pub fn supports_netinfo(&self) -> bool {
        matches!(
            self,
            Browser::ChromeMobile
                | Browser::AndroidWebkit
                | Browser::FirefoxMobile
                | Browser::ChromeDesktop
        )
    }

    /// Short label used in figure series.
    pub fn label(&self) -> &'static str {
        match self {
            Browser::ChromeMobile => "Chrome Mobile",
            Browser::AndroidWebkit => "Android Webkit",
            Browser::FirefoxMobile => "Firefox Mobile",
            Browser::ChromeDesktop => "Chrome",
            Browser::SafariMobile => "Mobile Safari",
            Browser::Other => "Other",
        }
    }
}

impl fmt::Display for Browser {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_cellular_counts() {
        assert!(ConnectionType::Cellular.is_cellular());
        for c in [
            ConnectionType::Wifi,
            ConnectionType::Ethernet,
            ConnectionType::Bluetooth,
            ConnectionType::Wimax,
            ConnectionType::Unknown,
        ] {
            assert!(!c.is_cellular());
        }
    }

    #[test]
    fn netinfo_support_matches_fig1() {
        assert!(Browser::ChromeMobile.supports_netinfo());
        assert!(Browser::AndroidWebkit.supports_netinfo());
        assert!(!Browser::SafariMobile.supports_netinfo());
        assert!(!Browser::Other.supports_netinfo());
    }
}
