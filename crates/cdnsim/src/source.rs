//! Streaming event source: the generative model as an unbounded feed.
//!
//! Batch mode materializes both datasets in one pass ([`crate::aggregate`]).
//! A real CDN never sees data that way — beacons and demand snapshots
//! arrive continuously and the ingest tier folds them into bounded state.
//! This module exposes the *same* generative model as a lazy, epoch-sliced
//! event stream so a streaming consumer (the `cellstream` crate) can be
//! tested for exact equivalence against the batch pipeline:
//!
//! * Every block draws its month of beacon hits and its daily demand from
//!   the per-block RNG streams of [`crate::stream`] — the identical draws
//!   batch mode makes — so folding the full stream reproduces
//!   [`crate::generate_beacons`]/[`crate::generate_demand`] bit for bit,
//!   for any shard count downstream.
//! * The month is sliced into `epochs` segments. Beacon hit counters are
//!   split across epochs with a multinomial drawn from a *separate* RNG
//!   stream (so the slicing never perturbs the monthly totals), and the
//!   demand week emits one event per smoothing day, assigned to epochs in
//!   day order. Epoch boundaries are the natural checkpoint points.
//!
//! Events for one block always appear in the same relative order no matter
//! how the stream is sharded by block — the determinism guarantee the
//! ingest engine builds on.

use std::fmt;
use std::sync::Arc;

use netaddr::{Asn, BlockId};
use serde::{Deserialize, Serialize};
use worldgen::sampling::{binomial, lognormal_jitter, poisson, rng_for, GenRng};
use worldgen::{SubnetRecord, World};

use crate::aggregate::CdnConfig;
use crate::netinfo::netinfo_share;
use crate::stream::{block_stream, BEACON_SEED_TAG, DEMAND_SEED_TAG};

/// Seed tag for the epoch-split RNG stream. Distinct from the dataset
/// tags so slicing draws never interleave with the monthly-total draws.
const SPLIT_SEED_TAG: u64 = 0x5711_7000_0000_0000;

/// How an event source failed to serve an epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SourceErrorKind {
    /// Transient: the collector stalled; retrying the epoch may succeed.
    Stall,
    /// Permanent: the epoch cannot be served.
    Failed,
}

/// Error surfaced by a faulty event source (a stalled or dead collector).
///
/// Only [`EventSource::try_epoch`] can return it, and only when a gate was
/// installed with [`EventSource::with_gate`] — the default source is
/// infallible.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceError {
    /// Epoch the failure was injected at.
    pub epoch: u32,
    /// Transient stall or permanent failure.
    pub kind: SourceErrorKind,
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            SourceErrorKind::Stall => write!(f, "event source stalled at epoch {}", self.epoch),
            SourceErrorKind::Failed => write!(f, "event source failed at epoch {}", self.epoch),
        }
    }
}

impl std::error::Error for SourceError {}

/// Per-epoch admission hook: the fault-injection seam a chaos harness uses
/// to simulate collector stalls and failures. Consulted by
/// [`EventSource::try_epoch`] once per call, before any event of the epoch
/// is emitted.
pub trait EpochGate: Send + Sync {
    /// Allow (`Ok`) or fail (`Err`) serving `epoch` right now.
    fn check(&self, epoch: u32) -> Result<(), SourceError>;
}

/// One element of the ingest feed.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum StreamEvent {
    /// A slice of one block's monthly RUM beacon hits.
    Beacon(BeaconDelta),
    /// One smoothing day's demand observation for a block.
    Demand(DemandDay),
}

impl StreamEvent {
    /// The block this event belongs to — the sharding key.
    pub fn block(&self) -> BlockId {
        match self {
            StreamEvent::Beacon(d) => d.block,
            StreamEvent::Demand(d) => d.block,
        }
    }

    /// The epoch this event was emitted in.
    pub fn epoch(&self) -> u32 {
        match self {
            StreamEvent::Beacon(d) => d.epoch,
            StreamEvent::Demand(d) => d.epoch,
        }
    }
}

/// An additive slice of one block's monthly beacon counters. Summing a
/// block's deltas over all epochs yields exactly the batch
/// [`crate::BeaconRecord`] for that block.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BeaconDelta {
    /// Epoch index, `0..epochs`.
    pub epoch: u32,
    /// The block.
    pub block: BlockId,
    /// Origin AS.
    pub asn: Asn,
    /// Beacon hits in this slice.
    pub hits_total: u64,
    /// NetInfo-enabled hits in this slice.
    pub netinfo_hits: u64,
    /// NetInfo hits labeled cellular.
    pub cellular_hits: u64,
    /// NetInfo hits labeled wifi.
    pub wifi_hits: u64,
    /// NetInfo hits with any other label.
    pub other_hits: u64,
}

/// One smoothing day's raw (unnormalized) demand draw for a block.
/// Accumulating a block's days in order and dividing by the smoothing
/// window reproduces the batch per-block demand bit for bit.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DemandDay {
    /// Epoch index, `0..epochs`.
    pub epoch: u32,
    /// Smoothing-day index, `0..smoothing_days`.
    pub day: u32,
    /// The block.
    pub block: BlockId,
    /// Origin AS.
    pub asn: Asn,
    /// Raw demand value for this day (latent weight × daily jitter).
    pub value: f64,
}

/// Lazy, epoch-sliced event stream over a world.
///
/// Holds only O(1) derived state (weight sums, budgets); every event is
/// computed on demand from the per-block RNG streams.
pub struct EventSource<'w> {
    world: &'w World,
    cfg: CdnConfig,
    epochs: u32,
    weight_sum: f64,
    hits_budget: f64,
    netinfo_frac: f64,
    gate: Option<Arc<dyn EpochGate>>,
}

impl<'w> EventSource<'w> {
    /// Build a source emitting the world's month of telemetry in `epochs`
    /// slices.
    ///
    /// # Panics
    /// Panics when `epochs == 0`.
    pub fn new(world: &'w World, cfg: CdnConfig, epochs: u32) -> Self {
        assert!(epochs > 0, "an event stream needs at least one epoch");
        // Identical derivations to `generate_beacons`, in the same order,
        // so the per-block draws match bit for bit.
        let netinfo_frac = netinfo_share(cfg.month_index).total() / 100.0;
        let weight_sum: f64 = world
            .blocks
            .records
            .iter()
            .map(|r| r.beacon_weight as f64)
            .sum();
        let hits_budget = world.config.netinfo_hits_total / netinfo_frac;
        EventSource {
            world,
            cfg,
            epochs,
            weight_sum,
            hits_budget,
            netinfo_frac,
            gate: None,
        }
    }

    /// Install an epoch gate. Gated sources can fail per epoch through
    /// [`try_epoch`](Self::try_epoch); the plain [`epoch`](Self::epoch)
    /// accessor ignores the gate (recovery replays read through it).
    pub fn with_gate(mut self, gate: Arc<dyn EpochGate>) -> Self {
        self.gate = Some(gate);
        self
    }

    /// Number of epoch slices.
    pub fn epochs(&self) -> u32 {
        self.epochs
    }

    /// Demand smoothing window (days), as the fold must divide by it.
    pub fn smoothing_days(&self) -> u32 {
        self.cfg.smoothing_days.max(1)
    }

    /// The CDN knobs this source samples under.
    pub fn cdn_config(&self) -> &CdnConfig {
        &self.cfg
    }

    /// All events of one epoch, lazily, in block-record order.
    ///
    /// # Panics
    /// Panics when `epoch >= self.epochs()`.
    pub fn epoch(&self, epoch: u32) -> impl Iterator<Item = StreamEvent> + '_ {
        assert!(
            epoch < self.epochs,
            "epoch {epoch} out of range (epochs = {})",
            self.epochs
        );
        let days = self.smoothing_days();
        self.world.blocks.records.iter().flat_map(move |b| {
            let mut out = Vec::new();
            if let Some(delta) = self.beacon_delta(b, epoch) {
                out.push(StreamEvent::Beacon(delta));
            }
            if b.demand_weight > 0.0 {
                for day in 0..days {
                    if epoch_of_day(day, days, self.epochs) == epoch {
                        out.push(StreamEvent::Demand(DemandDay {
                            epoch,
                            day,
                            block: b.block,
                            asn: b.asn,
                            value: self.demand_value(b, day),
                        }));
                    }
                }
            }
            out
        })
    }

    /// Fallible variant of [`epoch`](Self::epoch): consults the installed
    /// [`EpochGate`] (if any) before emitting events, so an injected
    /// collector stall or failure surfaces as a clean error instead of a
    /// silently empty epoch.
    ///
    /// # Panics
    /// Panics when `epoch >= self.epochs()` (programmer error, same as
    /// [`epoch`](Self::epoch)).
    pub fn try_epoch(
        &self,
        epoch: u32,
    ) -> Result<impl Iterator<Item = StreamEvent> + '_, SourceError> {
        if let Some(gate) = &self.gate {
            gate.check(epoch)?;
        }
        Ok(self.epoch(epoch))
    }

    /// The full stream: every epoch in order, lazily.
    pub fn events(&self) -> impl Iterator<Item = StreamEvent> + '_ {
        (0..self.epochs).flat_map(move |e| self.epoch(e))
    }

    /// Epoch `epoch`'s slice of one block's monthly beacon counters, or
    /// `None` when the block contributes nothing to this epoch.
    fn beacon_delta(&self, b: &SubnetRecord, epoch: u32) -> Option<BeaconDelta> {
        if b.beacon_weight <= 0.0 {
            return None;
        }
        // The monthly totals: the exact draw sequence of
        // `generate_beacons`, from the same per-block stream.
        let mut rng = rng_for(
            self.world.config.seed ^ BEACON_SEED_TAG,
            block_stream(b.block),
        );
        let mean = self.hits_budget * b.beacon_weight as f64 / self.weight_sum;
        let hits_total = poisson(&mut rng, mean);
        if hits_total == 0 {
            return None;
        }
        let netinfo_hits = binomial(&mut rng, hits_total, self.netinfo_frac);
        let cellular_hits = binomial(&mut rng, netinfo_hits, b.cell_rate as f64);
        let noncell = netinfo_hits - cellular_hits;
        let wifi_hits = binomial(&mut rng, noncell, self.cfg.wifi_share_noncell);
        let other_hits = noncell - wifi_hits;
        let non_netinfo = hits_total - netinfo_hits;

        // Slice the four disjoint hit categories across epochs with a
        // dedicated stream. The full schedule is drawn in a fixed order
        // every time, so any epoch's slice is independent of which epochs
        // were queried before — and the slices sum to the totals exactly.
        let mut srng = rng_for(
            self.world.config.seed ^ SPLIT_SEED_TAG,
            block_stream(b.block),
        );
        let e = epoch as usize;
        let non_netinfo_e = split_counter(&mut srng, non_netinfo, self.epochs)[e];
        let cellular_e = split_counter(&mut srng, cellular_hits, self.epochs)[e];
        let wifi_e = split_counter(&mut srng, wifi_hits, self.epochs)[e];
        let other_e = split_counter(&mut srng, other_hits, self.epochs)[e];
        let netinfo_e = cellular_e + wifi_e + other_e;
        let hits_e = non_netinfo_e + netinfo_e;
        if hits_e == 0 {
            return None;
        }
        Some(BeaconDelta {
            epoch,
            block: b.block,
            asn: b.asn,
            hits_total: hits_e,
            netinfo_hits: netinfo_e,
            cellular_hits: cellular_e,
            wifi_hits: wifi_e,
            other_hits: other_e,
        })
    }

    /// Day `day`'s raw demand draw for a block: the `(day + 1)`-th jitter
    /// from the block's demand stream, exactly as `generate_demand`
    /// accumulates them.
    fn demand_value(&self, b: &SubnetRecord, day: u32) -> f64 {
        let mut rng = rng_for(
            self.world.config.seed ^ DEMAND_SEED_TAG,
            block_stream(b.block),
        );
        let mut v = 0.0;
        for _ in 0..=day {
            v = b.demand_weight as f64 * lognormal_jitter(&mut rng, self.cfg.daily_jitter);
        }
        v
    }
}

/// The epoch a smoothing day lands in: days partition across epochs in
/// order, with every day assigned to exactly one epoch for any
/// `(days, epochs)` pair.
fn epoch_of_day(day: u32, days: u32, epochs: u32) -> u32 {
    debug_assert!(day < days);
    ((day as u64 * epochs as u64) / days as u64) as u32
}

/// Split `total` into `epochs` non-negative parts that sum to `total`
/// exactly, each part marginally Binomial(total, 1/epochs): epoch `e`
/// takes Binomial(remaining, 1/(epochs − e)).
fn split_counter(rng: &mut GenRng, total: u64, epochs: u32) -> Vec<u64> {
    let mut parts = Vec::with_capacity(epochs as usize);
    let mut remaining = total;
    for e in 0..epochs {
        let left = epochs - e;
        let take = if left == 1 {
            remaining
        } else {
            binomial(rng, remaining, 1.0 / left as f64)
        };
        parts.push(take);
        remaining -= take;
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    use crate::datasets::{BeaconDataset, BeaconRecord, DemandDataset, DemandRecord};
    use crate::{generate_beacons, generate_demand, BEACON_PERIOD, DEMAND_PERIOD};
    use worldgen::WorldConfig;

    /// Fold a full stream the way an ingest consumer would, without any
    /// sharding — the minimal reference fold.
    fn fold(source: &EventSource<'_>) -> (BeaconDataset, DemandDataset) {
        let mut beacons: HashMap<BlockId, BeaconRecord> = HashMap::new();
        let mut demand: HashMap<BlockId, (Asn, f64)> = HashMap::new();
        for ev in source.events() {
            match ev {
                StreamEvent::Beacon(d) => {
                    let r = beacons.entry(d.block).or_insert(BeaconRecord {
                        block: d.block,
                        asn: d.asn,
                        hits_total: 0,
                        netinfo_hits: 0,
                        cellular_hits: 0,
                        wifi_hits: 0,
                        other_hits: 0,
                    });
                    r.hits_total += d.hits_total;
                    r.netinfo_hits += d.netinfo_hits;
                    r.cellular_hits += d.cellular_hits;
                    r.wifi_hits += d.wifi_hits;
                    r.other_hits += d.other_hits;
                }
                StreamEvent::Demand(d) => {
                    let e = demand.entry(d.block).or_insert((d.asn, 0.0));
                    e.1 += d.value;
                }
            }
        }
        let days = source.smoothing_days() as f64;
        let beacons = BeaconDataset::from_records(BEACON_PERIOD, beacons.into_values().collect());
        let demand = DemandDataset::from_raw(
            DEMAND_PERIOD,
            demand
                .into_iter()
                .map(|(block, (asn, acc))| DemandRecord {
                    block,
                    asn,
                    du: acc / days,
                })
                .collect(),
        );
        (beacons, demand)
    }

    #[test]
    fn full_stream_fold_matches_batch_exactly() {
        let world = World::generate(WorldConfig::mini());
        let cfg = CdnConfig::default();
        let batch_b = generate_beacons(&world, &cfg);
        let batch_d = generate_demand(&world, &cfg);
        for epochs in [1u32, 5] {
            let source = EventSource::new(&world, cfg.clone(), epochs);
            let (sb, sd) = fold(&source);
            assert_eq!(sb.len(), batch_b.len(), "epochs={epochs}");
            for (x, y) in sb.iter().zip(batch_b.iter()) {
                assert_eq!(x, y, "epochs={epochs}");
            }
            assert_eq!(sd.len(), batch_d.len(), "epochs={epochs}");
            for (x, y) in sd.iter().zip(batch_d.iter()) {
                assert_eq!(x.block, y.block);
                assert_eq!(
                    x.du.to_bits(),
                    y.du.to_bits(),
                    "epochs={epochs}: {} vs {}",
                    x.du,
                    y.du
                );
            }
        }
    }

    #[test]
    fn epoch_slices_are_stable_under_query_order() {
        let world = World::generate(WorldConfig::mini());
        let source = EventSource::new(&world, CdnConfig::default(), 4);
        // Reading epoch 2 twice — once cold, once after reading 0 and 1 —
        // yields identical events.
        let cold: Vec<StreamEvent> = source.epoch(2).collect();
        let _ = source.epoch(0).count();
        let _ = source.epoch(1).count();
        let warm: Vec<StreamEvent> = source.epoch(2).collect();
        assert_eq!(cold, warm);
    }

    #[test]
    fn demand_days_partition_across_epochs() {
        for days in [1u32, 3, 7, 10] {
            for epochs in [1u32, 2, 7, 9] {
                let mut seen = vec![0u32; epochs as usize];
                let mut last = 0;
                for d in 0..days {
                    let e = epoch_of_day(d, days, epochs);
                    assert!(e < epochs, "day {d}: epoch {e} of {epochs}");
                    assert!(e >= last, "epoch assignment must be monotone");
                    last = e;
                    seen[e as usize] += 1;
                }
                let total: u32 = seen.iter().sum();
                assert_eq!(total, days);
            }
        }
    }

    #[test]
    fn gate_faults_surface_through_try_epoch_only() {
        use std::sync::atomic::{AtomicU32, Ordering};

        /// Stalls twice on epoch 1, then recovers; fails epoch 2 forever.
        struct TestGate {
            stalls_left: AtomicU32,
        }
        impl EpochGate for TestGate {
            fn check(&self, epoch: u32) -> Result<(), SourceError> {
                match epoch {
                    1 if self
                        .stalls_left
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                        .is_ok() =>
                    {
                        Err(SourceError {
                            epoch,
                            kind: SourceErrorKind::Stall,
                        })
                    }
                    2 => Err(SourceError {
                        epoch,
                        kind: SourceErrorKind::Failed,
                    }),
                    _ => Ok(()),
                }
            }
        }

        let world = World::generate(WorldConfig::mini());
        let gated =
            EventSource::new(&world, CdnConfig::default(), 3).with_gate(Arc::new(TestGate {
                stalls_left: AtomicU32::new(2),
            }));
        let plain = EventSource::new(&world, CdnConfig::default(), 3);

        // Epoch 0 passes and emits the exact same events as an ungated source.
        let gated0: Vec<StreamEvent> = gated.try_epoch(0).expect("epoch 0 open").collect();
        let plain0: Vec<StreamEvent> = plain.epoch(0).collect();
        assert_eq!(gated0, plain0);

        // Epoch 1 stalls twice, then recovers.
        for attempt in 0..2 {
            let err = gated.try_epoch(1).err().expect("stall");
            assert_eq!(err.kind, SourceErrorKind::Stall, "attempt {attempt}");
            assert_eq!(err.epoch, 1);
        }
        assert!(gated.try_epoch(1).is_ok(), "stalls are transient");

        // Epoch 2 fails permanently; the infallible accessor still works
        // (that is the recovery-replay path).
        let err = gated.try_epoch(2).err().expect("failure");
        assert_eq!(err.kind, SourceErrorKind::Failed);
        assert_eq!(gated.epoch(2).count(), plain.epoch(2).count());
    }

    #[test]
    fn split_counter_is_exact_and_deterministic() {
        let mut a = rng_for(9, 9);
        let mut b = rng_for(9, 9);
        for total in [0u64, 1, 7, 1_000, 123_456] {
            let pa = split_counter(&mut a, total, 6);
            let pb = split_counter(&mut b, total, 6);
            assert_eq!(pa, pb);
            assert_eq!(pa.iter().sum::<u64>(), total);
            assert_eq!(pa.len(), 6);
        }
        let mut r = rng_for(1, 1);
        assert_eq!(split_counter(&mut r, 42, 1), vec![42]);
    }
}
