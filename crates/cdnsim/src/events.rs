//! Event-level RUM simulation: the full causal chain, one page load at a
//! time.
//!
//! Aggregate mode (`crate::aggregate`) draws per-block hit counts in
//! closed form. This module instead walks the chain the paper describes:
//! a client device behind some access link loads a page of an opted-in
//! CDN customer → the RUM beacon fires → if the browser implements the
//! Network Information API, the beacon carries a ConnectionType — which
//! reflects the *device's* view, so a laptop behind a phone hotspot
//! reports `wifi` even though the path is cellular (§3.1).
//!
//! Event mode is meant for small worlds, tests, and demonstrations; an
//! integration test asserts that aggregating its events converges to the
//! same per-block cellular ratios aggregate mode produces.

use asdb::AccessType;
use netaddr::{Asn, BlockId};
use rand::Rng;
use serde::{Deserialize, Serialize};
use worldgen::sampling::{poisson, rng_for, weighted_choice, zipf_weights, GenRng};
use worldgen::{BlockRole, World};

use crate::connection::{Browser, ConnectionType};
use crate::datasets::{BeaconDataset, BeaconRecord};
use crate::netinfo::{browser_mix, DEC_2016};

/// One RUM beacon, as logged by the CDN.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BeaconEvent {
    /// Block the client IP aggregates into.
    pub block: BlockId,
    /// Origin AS.
    pub asn: Asn,
    /// Browser that fired the beacon.
    pub browser: Browser,
    /// ConnectionType reported by the Network Information API, or `None`
    /// when the browser does not implement it.
    pub connection: Option<ConnectionType>,
}

/// Event-simulation knobs.
#[derive(Clone, Debug)]
pub struct EventSimConfig {
    /// Month index for browser mix / NetInfo availability.
    pub month_index: u32,
    /// Total page loads to simulate across the world.
    pub page_loads: u64,
    /// Clients per active block (hits spread across them by a Zipf law —
    /// a few heavy users per block dominate, matching CGN behaviour).
    pub clients_per_block: usize,
    /// Probability that the network interface changed between IP capture
    /// and NetInfo poll, flipping the label (§3.1's rarer noise case).
    pub interface_switch_rate: f64,
}

impl Default for EventSimConfig {
    fn default() -> Self {
        EventSimConfig {
            month_index: DEC_2016,
            page_loads: 300_000,
            clients_per_block: 12,
            interface_switch_rate: 0.004,
        }
    }
}

/// Simulate page loads across the world's beacon-visible blocks.
///
/// Blocks are simulated in parallel; every block draws from its own RNG
/// stream keyed by block identity, and per-block event vectors are
/// concatenated in record order, so the output is bit-identical for any
/// thread count.
pub fn simulate_events(world: &World, cfg: &EventSimConfig) -> Vec<BeaconEvent> {
    use rayon::prelude::*;
    let weight_sum: f64 = world
        .blocks
        .records
        .iter()
        .map(|r| r.beacon_weight as f64)
        .sum();
    let mix = browser_mix(cfg.month_index);
    let mix_weights: Vec<f64> = mix.iter().map(|(_, p)| *p).collect();

    let per_block: Vec<Vec<BeaconEvent>> = world
        .blocks
        .records
        .par_iter()
        .map(|b| {
            if b.beacon_weight <= 0.0 {
                return Vec::new();
            }
            let mut rng = rng_for(
                world.config.seed ^ 0xE7E7_0000_0000_0000,
                crate::stream::block_stream(b.block),
            );
            let mean = cfg.page_loads as f64 * b.beacon_weight as f64 / weight_sum;
            let loads = poisson(&mut rng, mean);
            if loads == 0 {
                return Vec::new();
            }
            let clients = ClientPool::new(&mut rng, b, cfg.clients_per_block);
            let client_weights = zipf_weights(clients.len(), 1.1);
            let mut events = Vec::with_capacity(loads as usize);
            for _ in 0..loads {
                let c =
                    weighted_choice(&mut rng, &client_weights).expect("client pool is never empty");
                events.push(clients.page_load(&mut rng, c, &mix, &mix_weights, cfg));
            }
            events
        })
        .collect();
    per_block.into_iter().flatten().collect()
}

/// [`simulate_events`] under a span (`simulate_events`) with event and
/// NetInfo-label counters. The event stream is bit-identical for any
/// thread count, so the counters are too.
pub fn simulate_events_observed(
    world: &World,
    cfg: &EventSimConfig,
    obs: &cellobs::Observer,
) -> Vec<BeaconEvent> {
    let mut span = obs.span("simulate_events");
    let events = simulate_events(world, cfg);
    span.set_items(events.len() as u64);
    drop(span);
    if obs.is_enabled() {
        obs.counter("cdnsim.events.page_loads")
            .add(events.len() as u64);
        let labeled = events.iter().filter(|e| e.connection.is_some()).count();
        obs.counter("cdnsim.events.netinfo_labeled")
            .add(labeled as u64);
    }
    events
}

/// Aggregate raw events into the BEACON dataset shape.
pub fn aggregate_events(period: impl Into<String>, events: &[BeaconEvent]) -> BeaconDataset {
    use std::collections::HashMap;
    let mut map: HashMap<BlockId, BeaconRecord> = HashMap::new();
    for e in events {
        let r = map.entry(e.block).or_insert(BeaconRecord {
            block: e.block,
            asn: e.asn,
            hits_total: 0,
            netinfo_hits: 0,
            cellular_hits: 0,
            wifi_hits: 0,
            other_hits: 0,
        });
        r.hits_total += 1;
        if let Some(conn) = e.connection {
            r.netinfo_hits += 1;
            match conn {
                ConnectionType::Cellular => r.cellular_hits += 1,
                ConnectionType::Wifi => r.wifi_hits += 1,
                _ => r.other_hits += 1,
            }
        }
    }
    BeaconDataset::from_records(period, map.into_values().collect())
}

/// The devices active inside one block.
struct ClientPool {
    block: BlockId,
    asn: Asn,
    /// Per-client stable ConnectionType (what NetInfo reports while the
    /// client keeps its current interface).
    conns: Vec<ConnectionType>,
}

impl ClientPool {
    fn new(rng: &mut GenRng, b: &worldgen::SubnetRecord, n: usize) -> Self {
        let n = n.max(1);
        let mut conns = Vec::with_capacity(n);
        for _ in 0..n {
            conns.push(Self::draw_conn(rng, b));
        }
        ClientPool {
            block: b.block,
            asn: b.asn,
            conns,
        }
    }

    /// A client's stable ConnectionType given the block's ground truth:
    /// the latent `cell_rate` already encodes the operator's tethering
    /// profile, so clients behind a cellular path report cellular with
    /// that rate and `wifi` otherwise (they sit behind a hotspot); proxy
    /// fronts mirror their mobile clientele; fixed paths are wifi-heavy
    /// with a rare cellular switch captured at page-load time instead.
    fn draw_conn(rng: &mut GenRng, b: &worldgen::SubnetRecord) -> ConnectionType {
        let roll: f64 = rng.gen();
        match (b.access, b.role) {
            (AccessType::Cellular, _) | (AccessType::Fixed, BlockRole::ProxyFront) => {
                if roll < b.cell_rate as f64 {
                    ConnectionType::Cellular
                } else {
                    ConnectionType::Wifi
                }
            }
            (AccessType::Fixed, _) => {
                if roll < 0.70 {
                    ConnectionType::Wifi
                } else if roll < 0.97 {
                    ConnectionType::Ethernet
                } else {
                    ConnectionType::Bluetooth
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.conns.len()
    }

    fn page_load(
        &self,
        rng: &mut GenRng,
        client: usize,
        mix: &[(Browser, f64)],
        mix_weights: &[f64],
        cfg: &EventSimConfig,
    ) -> BeaconEvent {
        let browser = mix[weighted_choice(rng, mix_weights).expect("mix is non-empty")].0;
        let connection = if browser.supports_netinfo() {
            let mut conn = self.conns[client];
            // Interface switched between IP capture and the NetInfo poll —
            // a symmetric toggle: a device that was on cellular lands on
            // wifi, anything else lands on cellular. The noise adds *and*
            // removes cellular labels, so event-mode ratios converge to
            // the latent rate from both sides (§3.1).
            if rng.gen::<f64>() < cfg.interface_switch_rate {
                conn = if conn == ConnectionType::Cellular {
                    ConnectionType::Wifi
                } else {
                    ConnectionType::Cellular
                };
            }
            Some(conn)
        } else {
            None
        };
        BeaconEvent {
            block: self.block,
            asn: self.asn,
            browser,
            connection,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use worldgen::WorldConfig;

    fn small_events() -> (World, Vec<BeaconEvent>) {
        let world = World::generate(WorldConfig::mini());
        let cfg = EventSimConfig {
            page_loads: 250_000,
            ..Default::default()
        };
        let events = simulate_events(&world, &cfg);
        (world, events)
    }

    #[test]
    fn volume_and_netinfo_share() {
        let (_, events) = small_events();
        let n = events.len() as f64;
        assert!((200_000.0..300_000.0).contains(&n), "events: {n}");
        let netinfo = events.iter().filter(|e| e.connection.is_some()).count() as f64;
        let share = netinfo / n;
        assert!(
            (0.11..0.16).contains(&share),
            "NetInfo share {share:.3} (Dec 2016 ≈ 0.132)"
        );
    }

    #[test]
    fn netinfo_only_from_supporting_browsers() {
        let (_, events) = small_events();
        for e in &events {
            if e.connection.is_some() {
                assert!(e.browser.supports_netinfo(), "{:?}", e.browser);
            }
        }
    }

    #[test]
    fn aggregation_matches_manual_counts() {
        let (_, events) = small_events();
        let ds = aggregate_events("t", &events);
        assert_eq!(ds.hits_total() as usize, events.len());
        let cellular_manual = events
            .iter()
            .filter(|e| e.connection == Some(ConnectionType::Cellular))
            .count() as u64;
        let cellular_ds: u64 = ds.iter().map(|r| r.cellular_hits).sum();
        assert_eq!(cellular_manual, cellular_ds);
    }

    #[test]
    fn event_ratios_track_latent_rates() {
        let (world, events) = small_events();
        let ds = aggregate_events("t", &events);
        let truth: std::collections::HashMap<_, _> =
            world.blocks.records.iter().map(|r| (r.block, r)).collect();
        let mut checked = 0;
        let mut abs_dev = 0.0;
        for r in ds.iter() {
            if r.netinfo_hits >= 100 {
                let t = truth[&r.block];
                let ratio = r.cellular_ratio().unwrap();
                let latent = t.cell_rate as f64;
                // A block's ratio is driven by ~a dozen clustered clients,
                // so individual blocks wander; the population must track.
                assert!(
                    (ratio - latent).abs() < 0.45,
                    "{}: ratio {ratio:.3} vs latent {latent:.3}",
                    r.block
                );
                abs_dev += (ratio - latent).abs();
                checked += 1;
            }
        }
        assert!(
            checked >= 4,
            "need several well-sampled blocks, got {checked}"
        );
        let mean_dev = abs_dev / checked as f64;
        assert!(mean_dev < 0.15, "mean |ratio − latent| = {mean_dev:.3}");
    }
}
