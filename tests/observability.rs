//! Observability contract tests: the instrumented pipeline's exported
//! counters, histograms, and span structure are deterministic functions
//! of the configuration and input stream — byte-identical across rayon
//! thread counts and (for counters) shard counts — and both exporters
//! stay parseable and stable.

use std::collections::BTreeMap;

use cellspotting::cdnsim::{self, CdnConfig, EventSource};
use cellspotting::cellobs::{ExportFormat, Observer};
use cellspotting::cellspot::{Pipeline, StudyConfig};
use cellspotting::cellstream::{IngestEngine, ResolverMap, StreamConfig};
use cellspotting::worldgen::{World, WorldConfig};

/// The eleven study stages `cellspot::Pipeline::run` reports, in order.
const STUDY_STAGES: [&str; 11] = [
    "join",
    "classify",
    "ratio_distributions",
    "validate",
    "sweep",
    "aggregate_by_as",
    "as_filter",
    "mixed",
    "ranking",
    "dns",
    "world_view",
];

/// Run the fully instrumented batch pipeline (world → datasets → DNS →
/// study) inside a private rayon pool of `threads` workers and return
/// the redacted canonical JSON export.
fn observed_study_export(threads: usize) -> String {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("local rayon pool")
        .install(|| {
            let obs = Observer::enabled();
            let cfg = WorldConfig::mini().with_seed(0xC0FFEE);
            let min_hits = cfg.scaled_min_beacon_hits();
            let world = World::generate_with(cfg, &obs);
            let (beacons, demand) = cdnsim::generate_datasets_observed(&world, &obs);
            let dns = cellspotting::dnssim::generate_dns(&world);
            Pipeline::new(&beacons, &demand)
                .as_db(&world.as_db)
                .carriers(&world.carriers)
                .dns(&dns)
                .study_config(StudyConfig::default().with_min_hits(min_hits))
                .observer(obs.clone())
                .run()
                .expect("default study config is valid");
            obs.snapshot().to_canonical_json_redacted()
        })
}

/// Stream the mini world's event stream through `shards` shards and
/// return the observer's snapshot.
fn observed_stream_snapshot(shards: u32) -> cellspotting::cellobs::ObsSnapshot {
    let obs = Observer::enabled();
    let world = World::generate(WorldConfig::mini().with_seed(0xBEEF));
    let dns = cellspotting::dnssim::generate_dns(&world);
    let source = EventSource::new(&world, CdnConfig::default(), 4);
    let mut engine = IngestEngine::for_source(
        StreamConfig {
            shards,
            ..Default::default()
        },
        &source,
        ResolverMap::from_dns(&dns),
    )
    .with_observer(obs.clone());
    engine.run_to_end(&source);
    obs.snapshot()
}

/// The acceptance contract: counters and gauges (the whole redacted
/// export, in fact) are byte-identical whether the pipeline runs on 1
/// thread or 8.
#[test]
fn redacted_export_is_byte_identical_across_thread_counts() {
    let one = observed_study_export(1);
    let eight = observed_study_export(8);
    assert_eq!(
        one, eight,
        "redacted observability export must not depend on the rayon thread count"
    );
}

/// Two identical runs produce byte-identical redacted exports (the
/// golden-stability half of the exporter contract).
#[test]
fn redacted_export_is_stable_across_runs() {
    assert_eq!(observed_study_export(2), observed_study_export(2));
}

/// The JSON export parses with a standard JSON parser and covers every
/// pipeline stage: a `pipeline.<stage>.items` counter and a
/// `study/<stage>` span per stage, plus the worldgen and cdnsim
/// sampling metrics.
#[test]
fn json_export_parses_and_covers_every_stage() {
    let json = observed_study_export(2);
    let v: serde_json::Value = serde_json::from_str(&json).expect("export is valid JSON");
    let counters = v["counters"].as_object().expect("counters object");
    for stage in STUDY_STAGES {
        assert!(
            counters.contains_key(&format!("pipeline.{stage}.items")),
            "missing counter for stage {stage}"
        );
    }
    for key in [
        "worldgen.blocks",
        "worldgen.operators",
        "worldgen.carriers",
        "cdnsim.beacon.records",
        "cdnsim.beacon.hits_total",
        "cdnsim.beacon.netinfo_hits",
        "cdnsim.demand.records",
    ] {
        assert!(counters.contains_key(key), "missing counter {key}");
        assert!(
            counters[key].as_u64().expect("u64 counter") > 0,
            "{key} is zero"
        );
    }
    let spans: Vec<&str> = v["spans"]
        .as_array()
        .expect("spans array")
        .iter()
        .map(|s| s["path"].as_str().expect("span path"))
        .collect();
    assert!(spans.contains(&"worldgen"));
    assert!(spans.contains(&"study"));
    for stage in STUDY_STAGES {
        let path = format!("study/{stage}");
        assert!(spans.contains(&path.as_str()), "missing span {path}");
    }
    assert!(
        v["histograms"]
            .as_object()
            .expect("histograms object")
            .contains_key("pipeline.join.netinfo_hits_per_block"),
        "join stage histogram present"
    );
}

/// Streaming counters and histograms are functions of the stream alone:
/// identical at any shard count. (Gauges — peak state bytes — and
/// checkpoint byte counters legitimately vary with the shard layout and
/// are excluded from this contract.)
#[test]
fn stream_counters_are_shard_count_invariant() {
    let two = observed_stream_snapshot(2);
    let seven = observed_stream_snapshot(7);
    assert_eq!(
        two.counters, seven.counters,
        "stream counters must not depend on the shard count"
    );
    assert_eq!(
        two.histograms, seven.histograms,
        "per-epoch event histogram must not depend on the shard count"
    );
    assert!(two.counters["stream.events"] > 0);
    assert_eq!(two.counters["stream.epochs"], 4);
    // The gauge exists in both runs even though its value may differ.
    assert!(two.gauges.contains_key("stream.state_bytes.peak"));
    assert!(seven.gauges.contains_key("stream.state_bytes.peak"));
}

/// The Prometheus export is line-parseable, covers the same families,
/// and is stable across identical runs once wall-clock (`span_millis`)
/// lines are dropped.
#[test]
fn prometheus_export_is_parseable_and_stable() {
    let render = || {
        let snap = observed_stream_snapshot(3);
        ExportFormat::Prometheus.render(&snap)
    };
    let text = render();
    let mut families = BTreeMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE name kind");
            families.insert(name.to_string(), kind.to_string());
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("sample line is `name value`");
        assert!(!name.is_empty(), "empty metric name in {line:?}");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable value in {line:?}"
        );
    }
    assert_eq!(
        families.get("stream_events").map(String::as_str),
        Some("counter")
    );
    assert_eq!(
        families.get("stream_state_bytes_peak").map(String::as_str),
        Some("gauge")
    );
    assert_eq!(
        families.get("stream_epoch_events").map(String::as_str),
        Some("histogram")
    );
    let strip_wall_clock = |t: &str| {
        t.lines()
            .filter(|l| !l.starts_with("span_millis"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip_wall_clock(&text),
        strip_wall_clock(&render()),
        "Prometheus export (minus wall clock) must be stable across runs"
    );
}

/// Histogram buckets are powers of two with the documented boundaries:
/// a value lands in the bucket whose upper bound is the smallest power
/// of two ≥ the value.
#[test]
fn histogram_bucket_boundaries_are_powers_of_two() {
    let obs = Observer::enabled();
    let h = obs.histogram("h");
    for v in [1u64, 2, 3, 4, 5, 8, 9, 1 << 40] {
        h.record(v);
    }
    let snap = obs.snapshot();
    let hist = &snap.histograms["h"];
    assert_eq!(hist.count, 8);
    assert_eq!(hist.sum, 1 + 2 + 3 + 4 + 5 + 8 + 9 + (1u64 << 40));
    // Sparse ascending (bucket_index, count) pairs: 1 → le="1"; 2 →
    // le="2"; 3,4 → le="4"; 5,8 → le="8"; 9 → le="16"; 2^40 → its own.
    assert_eq!(
        hist.buckets,
        vec![(0, 1), (1, 1), (2, 2), (3, 2), (4, 1), (40, 1)]
    );
    // And the Prometheus rendering accumulates them cumulatively.
    let text = ExportFormat::Prometheus.render(&snap);
    for (bound, cumulative) in [("1", 1), ("2", 2), ("4", 4), ("8", 6), ("16", 7)] {
        assert!(
            text.contains(&format!("h_bucket{{le=\"{bound}\"}} {cumulative}\n")),
            "missing cumulative bucket le={bound}"
        );
    }
    assert!(text.contains("h_bucket{le=\"+Inf\"} 8\n"));
}

/// A disabled observer records nothing — the near-zero-cost default.
#[test]
fn disabled_observer_records_nothing() {
    let obs = Observer::disabled();
    let world = World::generate_with(WorldConfig::mini(), &obs);
    let (beacons, demand) = cdnsim::generate_datasets_observed(&world, &obs);
    Pipeline::new(&beacons, &demand)
        .observer(obs.clone())
        .run()
        .expect("default study config is valid");
    let snap = obs.snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.gauges.is_empty());
    assert!(snap.histograms.is_empty());
    assert!(snap.spans.is_empty());
}

/// The builder entry points are bit-deterministic run to run — the
/// property the removed `run_study`/`classify_datasets` shims used to
/// cross-check against.
#[test]
fn builder_runs_are_bit_deterministic() {
    let world = World::generate(WorldConfig::mini());
    let (beacons, demand) = cdnsim::generate_datasets(&world);
    let min_hits = world.config.scaled_min_beacon_hits();
    let cfg = StudyConfig::default().with_min_hits(min_hits);

    let study = |cfg: StudyConfig| {
        Pipeline::new(&beacons, &demand)
            .as_db(&world.as_db)
            .carriers(&world.carriers)
            .study_config(cfg)
            .run()
            .expect("default study config is valid")
            .into_study()
    };
    let a = study(cfg.clone());
    let b = study(cfg);
    assert_eq!(a.classification.len(), b.classification.len());
    assert_eq!(a.filter.table5_counts(), b.filter.table5_counts());
    assert_eq!(
        a.view.global_cellular_pct().to_bits(),
        b.view.global_cellular_pct().to_bits()
    );

    let classify = || {
        Pipeline::new(&beacons, &demand)
            .threshold(0.5)
            .classify()
            .expect("valid threshold")
    };
    let (index1, class1) = classify();
    let (index2, class2) = classify();
    assert_eq!(index1.len(), index2.len());
    assert_eq!(class1.len(), class2.len());
}
