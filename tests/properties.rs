//! Property-based tests on the core data structures and invariants,
//! using proptest: prefix parsing/printing, trie-vs-linear-scan LPM,
//! minimal covers, CDFs, samplers, and classification monotonicity.

use proptest::prelude::*;

use cellspotting::cellspot::{BlockIndex, Classification, Confusion, Ecdf};
use cellspotting::netaddr::{Block24, Ipv4Net, Ipv6Net, PrefixTrie};

proptest! {
    /// Display → parse is the identity for IPv4 prefixes.
    #[test]
    fn ipv4net_display_parse_round_trip(addr: u32, len in 0u8..=32) {
        let net = Ipv4Net::new(addr, len).expect("len in range");
        let back: Ipv4Net = net.to_string().parse().expect("own display parses");
        prop_assert_eq!(net, back);
    }

    /// Display → parse is the identity for IPv6 prefixes.
    #[test]
    fn ipv6net_display_parse_round_trip(addr: u128, len in 0u8..=128) {
        let net = Ipv6Net::new(addr, len).expect("len in range");
        let back: Ipv6Net = net.to_string().parse().expect("own display parses");
        prop_assert_eq!(net, back);
    }

    /// A prefix contains exactly the addresses between first() and last().
    #[test]
    fn ipv4net_containment_matches_range(addr: u32, len in 1u8..=32, probe: u32) {
        let net = Ipv4Net::new(addr, len).expect("len in range");
        let inside = probe >= net.first() && probe <= net.last();
        prop_assert_eq!(net.contains(probe), inside);
    }

    /// The trie's longest-prefix match agrees with a brute-force linear
    /// scan over the same prefix set.
    #[test]
    fn trie_lpm_matches_linear_scan(
        prefixes in prop::collection::vec((any::<u32>(), 1u8..=28), 1..40),
        probes in prop::collection::vec(any::<u32>(), 1..20),
    ) {
        let nets: Vec<Ipv4Net> = prefixes
            .iter()
            .map(|(a, l)| Ipv4Net::new(*a, *l).expect("len in range"))
            .collect();
        let mut trie = PrefixTrie::new();
        for (i, net) in nets.iter().enumerate() {
            trie.insert(*net, i);
        }
        for probe in probes {
            let expected = nets
                .iter()
                .enumerate()
                .filter(|(_, n)| n.contains(probe))
                .max_by_key(|(i, n)| (n.len(), usize::MAX - i)) // longest wins; later duplicates replaced earlier ones
                .map(|(_, n)| *n);
            let got = trie.lookup_v4(probe).map(|(n, _)| n);
            prop_assert_eq!(got, expected);
        }
    }

    /// Minimal covers are exact: disjoint prefixes whose blocks are
    /// precisely the requested run.
    #[test]
    fn block24_cover_is_exact(start in 0u32..0x00FF_0000, count in 0u32..2_000) {
        let count = count.min(0x00FF_FFFF - start);
        let cover = Block24::cover(Block24::from_index(start), count);
        let total: u64 = cover.iter().map(|n| n.num_block24()).sum();
        prop_assert_eq!(total, count as u64);
        for w in cover.windows(2) {
            prop_assert!(!w[0].overlaps(&w[1]));
        }
        for net in &cover {
            let first = Block24::of_net(net).index();
            prop_assert!(first >= start);
            prop_assert!(first < start + count.max(1));
        }
    }

    /// ECDFs are monotone, bounded in [0,1], and evaluate to 1 at max.
    #[test]
    fn ecdf_is_monotone_and_bounded(values in prop::collection::vec(0.0f64..100.0, 1..200)) {
        let cdf = Ecdf::new(values.iter().copied());
        let mut prev = 0.0;
        for i in 0..=50 {
            let x = i as f64 * 2.0;
            let y = cdf.eval(x);
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert!(y >= prev - 1e-12);
            prev = y;
        }
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!((cdf.eval(max) - 1.0).abs() < 1e-12);
    }

    /// Quantiles are inverse to evaluation: eval(quantile(q)) ≥ q.
    #[test]
    fn ecdf_quantile_inverts(values in prop::collection::vec(-50.0f64..50.0, 1..100), q in 0.0f64..=1.0) {
        let cdf = Ecdf::new(values.iter().copied());
        let v = cdf.quantile(q).expect("non-empty");
        prop_assert!(cdf.eval(v) >= q - 1e-12);
    }

    /// Confusion metrics are always within [0,1] and never NaN.
    #[test]
    fn confusion_metrics_bounded(tp in 0.0f64..1e6, fp in 0.0f64..1e6, tn in 0.0f64..1e6, fn_ in 0.0f64..1e6) {
        let c = Confusion { tp, fp, tn, fn_ };
        for v in [c.precision(), c.recall(), c.f1(), c.accuracy()] {
            prop_assert!(v.is_finite());
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    /// Zipf splits preserve their total and stay positive.
    #[test]
    fn zipf_split_preserves_total(total in 0.001f64..1e6, n in 1usize..200, alpha in 0.0f64..3.0) {
        use cellspotting::worldgen::sampling::{rng_for, zipf_split};
        let mut rng = rng_for(99, 0);
        let shares = zipf_split(&mut rng, total, n, alpha, 0.3);
        prop_assert_eq!(shares.len(), n);
        let sum: f64 = shares.iter().sum();
        prop_assert!((sum - total).abs() < total * 1e-9 + 1e-12);
        prop_assert!(shares.iter().all(|s| *s > 0.0));
    }
}

/// Classification is monotone in the threshold: raising it never adds
/// blocks. (Plain test over a generated world: proptest over full worlds
/// would be needlessly slow.)
#[test]
fn classification_monotone_in_threshold() {
    use cellspotting::cdnsim::generate_datasets;
    use cellspotting::worldgen::{World, WorldConfig};
    let world = World::generate(WorldConfig::mini());
    let (beacons, demand) = generate_datasets(&world);
    let index = BlockIndex::build(&beacons, &demand);
    let mut prev_len = usize::MAX;
    for t in [0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
        let c = Classification::new(&index, t);
        assert!(c.len() <= prev_len, "threshold {t} grew the set");
        prev_len = c.len();
    }
    // And every member at a high threshold is a member at a lower one.
    let loose = Classification::new(&index, 0.2);
    let strict = Classification::new(&index, 0.8);
    for (block, _) in strict.iter() {
        assert!(loose.is_cellular(block));
    }
}

proptest! {
    /// PrefixSet membership agrees with a naive any-prefix-contains check,
    /// and canonicalization preserves the address count of the union.
    #[test]
    fn prefixset_matches_naive_membership(
        prefixes in prop::collection::vec((any::<u32>(), 8u8..=28), 1..25),
        probes in prop::collection::vec(any::<u32>(), 1..30),
    ) {
        use cellspotting::netaddr::Ipv4PrefixSet;
        let nets: Vec<Ipv4Net> = prefixes
            .iter()
            .map(|(a, l)| Ipv4Net::new(*a, *l).expect("len in range"))
            .collect();
        let set = Ipv4PrefixSet::from_prefixes(nets.iter().copied());
        for probe in probes {
            let naive = nets.iter().any(|n| n.contains(probe));
            prop_assert_eq!(set.contains(probe), naive, "probe {:x}", probe);
        }
        // Canonical prefixes are sorted and disjoint.
        for w in set.prefixes().windows(2) {
            prop_assert!(w[0].last() < w[1].first());
        }
        // Idempotence: re-canonicalizing changes nothing.
        let again = Ipv4PrefixSet::from_prefixes(set.prefixes().iter().copied());
        prop_assert_eq!(&again, &set);
    }

    /// Wilson intervals are well-formed: ordered, within [0,1], contain
    /// the point estimate, and shrink as evidence grows.
    #[test]
    fn wilson_interval_well_formed(successes in 0u64..500, extra in 0u64..500, z in 0.0f64..4.0) {
        use cellspotting::cellspot::wilson_interval;
        let trials = successes + extra;
        prop_assume!(trials > 0);
        let (lo, hi) = wilson_interval(successes, trials, z);
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
        prop_assert!(lo <= hi + 1e-12);
        let p = successes as f64 / trials as f64;
        prop_assert!(lo <= p + 1e-9 && p <= hi + 1e-9, "({lo}, {hi}) vs p={p}");
        // 10x the evidence at the same rate never widens the interval.
        let (lo10, hi10) = wilson_interval(successes * 10, trials * 10, z);
        prop_assert!(hi10 - lo10 <= (hi - lo) + 1e-9);
    }
}
