//! Streaming ↔ batch equivalence: the acceptance contract of the
//! `cellstream` subsystem.
//!
//! * Folding the complete event stream reproduces the batch datasets
//!   **exactly** — bit for bit, at any shard count — so the downstream
//!   study (classification, AS funnel, demand shares) is identical.
//! * Sketch outputs are approximate but honor their documented bounds:
//!   HyperLogLog distinct-client estimates within a few standard errors,
//!   Space-Saving heavy hitters bracketing the true weights.
//! * Killing the ingest at an epoch boundary and restoring from the
//!   checkpoint ends in byte-identical state (covered in depth by
//!   `crates/cellstream/tests/checkpoint.rs`; re-asserted here through
//!   the dataset outputs).

use std::collections::{HashMap, HashSet};

use cellspotting::cdnsim::{
    generate_datasets, BeaconDataset, CdnConfig, DemandDataset, EventSource, StreamEvent,
};
use cellspotting::cellspot::{Pipeline, StudyConfig};
use cellspotting::cellstream::{IngestEngine, ResolverMap, StreamConfig};
use cellspotting::dnssim::{generate_dns, DnsSim};
use cellspotting::netaddr::BlockId;
use cellspotting::worldgen::{World, WorldConfig};

fn mini_setup() -> (World, DnsSim, BeaconDataset, DemandDataset) {
    let world = World::generate(WorldConfig::mini());
    let dns = generate_dns(&world);
    let (beacons, demand) = generate_datasets(&world);
    (world, dns, beacons, demand)
}

fn streamed(
    world: &World,
    dns: &DnsSim,
    shards: u32,
    epochs: u32,
) -> cellspotting::cellstream::StreamOutputs {
    let source = EventSource::new(world, CdnConfig::default(), epochs);
    let mut engine = IngestEngine::for_source(
        StreamConfig {
            shards,
            ..Default::default()
        },
        &source,
        ResolverMap::from_dns(dns),
    );
    engine.run_to_end(&source);
    engine.finalize()
}

fn assert_datasets_identical(
    label: &str,
    (ab, ad): (&BeaconDataset, &DemandDataset),
    (bb, bd): (&BeaconDataset, &DemandDataset),
) {
    assert_eq!(ab.len(), bb.len(), "{label}: beacon block counts");
    for (x, y) in ab.iter().zip(bb.iter()) {
        assert_eq!(x, y, "{label}: beacon record");
    }
    assert_eq!(ad.len(), bd.len(), "{label}: demand block counts");
    for (x, y) in ad.iter().zip(bd.iter()) {
        assert_eq!(x.block, y.block, "{label}: demand block order");
        assert_eq!(x.asn, y.asn, "{label}: demand asn");
        assert_eq!(
            x.du.to_bits(),
            y.du.to_bits(),
            "{label}: demand du must match bit for bit ({} vs {})",
            x.du,
            y.du
        );
    }
}

/// The tentpole guarantee: every (shards, epochs) layout folds the stream
/// into exactly the batch datasets.
#[test]
fn stream_fold_reproduces_batch_at_any_shard_count() {
    let (world, dns, beacons, demand) = mini_setup();
    for (shards, epochs) in [(1u32, 1u32), (1, 6), (3, 4), (7, 9)] {
        let out = streamed(&world, &dns, shards, epochs);
        assert_datasets_identical(
            &format!("shards={shards} epochs={epochs}"),
            (&out.beacons, &out.demand),
            (&beacons, &demand),
        );
    }
}

/// Counter-based study outputs over the streamed snapshot equal the
/// batch study's: same classification, same funnel, same demand shares.
#[test]
fn study_over_streamed_snapshot_matches_batch() {
    let (world, dns, beacons, demand) = mini_setup();
    let out = streamed(&world, &dns, 5, 7);
    let cfg = StudyConfig::default().with_min_hits(world.config.scaled_min_beacon_hits());
    let batch = Pipeline::new(&beacons, &demand)
        .as_db(&world.as_db)
        .carriers(&world.carriers)
        .dns(&dns)
        .study_config(cfg.clone())
        .run()
        .expect("default study config is valid")
        .into_study();
    let stream = Pipeline::new(&out.beacons, &out.demand)
        .as_db(&world.as_db)
        .carriers(&world.carriers)
        .dns(&dns)
        .study_config(cfg)
        .run()
        .expect("default study config is valid")
        .into_study();
    assert_eq!(
        batch.classification.block_counts(),
        stream.classification.block_counts()
    );
    assert_eq!(batch.filter.table5_counts(), stream.filter.table5_counts());
    assert_eq!(
        batch.view.global_cellular_pct().to_bits(),
        stream.view.global_cellular_pct().to_bits()
    );
}

/// HyperLogLog estimates: for every resolver with a meaningful client
/// population, the estimate lands within 10% of the exact distinct count
/// (the sketch's 3-sigma band at precision 12 is under 5%; 10% leaves
/// headroom for small populations).
#[test]
fn resolver_client_estimates_are_within_bounds() {
    let (world, dns, _, demand) = mini_setup();
    let out = streamed(&world, &dns, 3, 5);

    // Exact distinct demand blocks per resolver, from the same attribution
    // the engine uses.
    let map = ResolverMap::from_dns(&dns);
    let mut exact: HashMap<u32, HashSet<BlockId>> = HashMap::new();
    for r in demand.iter() {
        if let Some(res) = map.resolver_of(r.block) {
            exact.entry(res).or_default().insert(r.block);
        }
    }

    let mut checked = 0;
    for rc in &out.sketches.resolver_clients {
        let truth = exact.get(&rc.resolver).map(|s| s.len()).unwrap_or_default() as f64;
        assert!(
            truth > 0.0,
            "sketched resolver {} never saw demand",
            rc.resolver
        );
        if truth >= 30.0 {
            let rel = (rc.estimated_clients - truth).abs() / truth;
            assert!(
                rel <= 0.10,
                "resolver {}: estimate {:.1} vs exact {truth} (rel err {rel:.3})",
                rc.resolver,
                rc.estimated_clients
            );
            checked += 1;
        }
    }
    assert!(checked >= 3, "need well-populated resolvers, got {checked}");
    // Every resolver with demand-attributed clients was sketched.
    assert_eq!(exact.len(), out.sketches.resolver_clients.len());
}

/// Space-Saving heavy hitters: estimates bracket the true raw demand
/// (true ≤ estimate ≤ true + error), and the heaviest blocks are found.
#[test]
fn demand_heavy_hitters_honor_error_bounds() {
    let (world, dns, _, _) = mini_setup();
    let epochs = 5;

    // Exact raw per-block demand offered to the sketch, from the source.
    let source = EventSource::new(&world, CdnConfig::default(), epochs);
    let mut exact: HashMap<BlockId, f64> = HashMap::new();
    let mut total = 0.0;
    for ev in source.events() {
        if let StreamEvent::Demand(d) = ev {
            *exact.entry(d.block).or_default() += d.value;
            total += d.value;
        }
    }

    for shards in [1u32, 4] {
        let out = streamed(&world, &dns, shards, epochs);
        let s = &out.sketches;
        assert!(
            (s.total_demand_weight - total).abs() <= 1e-6 * total,
            "shards={shards}: sketch total {} vs exact {total}",
            s.total_demand_weight
        );
        for h in &s.heavy_hitters {
            let t = exact.get(&h.block).copied().unwrap_or_default();
            assert!(
                h.weight + 1e-9 >= t,
                "shards={shards}: {:?} under-counted ({} < {t})",
                h.block,
                h.weight
            );
            assert!(
                h.weight - h.error <= t + 1e-9,
                "shards={shards}: {:?} bound violated (est {} err {} true {t})",
                h.block,
                h.weight,
                h.error
            );
        }
        // The true top-10 blocks must all be tracked: each carries far
        // more weight than the sketch's worst-case over-count.
        let mut ranked: Vec<(&BlockId, &f64)> = exact.iter().collect();
        ranked.sort_by(|a, b| b.1.total_cmp(a.1).then(a.0.cmp(b.0)));
        let tracked: HashSet<BlockId> = s.heavy_hitters.iter().map(|h| h.block).collect();
        for (block, w) in ranked.iter().take(10) {
            if **w > 2.0 * s.heavy_error_bound {
                assert!(
                    tracked.contains(*block),
                    "shards={shards}: top block {block:?} (weight {w}) not tracked"
                );
            }
        }
    }
}

/// Partial streams also produce valid (smaller) datasets: stopping early
/// never corrupts state — the engine just reports fewer hits.
#[test]
fn partial_stream_is_a_prefix_not_garbage() {
    let (world, dns, beacons, _) = mini_setup();
    let source = EventSource::new(&world, CdnConfig::default(), 4);
    let mut engine = IngestEngine::for_source(
        StreamConfig::default(),
        &source,
        ResolverMap::from_dns(&dns),
    );
    engine.ingest_epoch(&source);
    engine.ingest_epoch(&source);
    let partial = engine.finalize();
    assert!(partial.beacons.hits_total() > 0);
    assert!(
        partial.beacons.hits_total() < beacons.hits_total(),
        "half the epochs must hold fewer hits than the full month"
    );
    for r in partial.beacons.iter() {
        let full = beacons.get(r.block).expect("no phantom blocks");
        assert!(r.hits_total <= full.hits_total);
        assert!(r.netinfo_hits <= full.netinfo_hits);
    }
}
