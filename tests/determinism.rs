//! Reproducibility guarantees: the same seed yields bit-identical
//! datasets and study results; different seeds yield different worlds
//! while preserving every calibrated shape.

use cellspotting::cdnsim::generate_datasets;
use cellspotting::cellspot::{Pipeline, StudyConfig};
use cellspotting::worldgen::{World, WorldConfig};

#[test]
fn same_seed_same_world_and_datasets() {
    let run = || {
        let world = World::generate(WorldConfig::mini().with_seed(123));
        let (beacons, demand) = generate_datasets(&world);
        (world, beacons, demand)
    };
    let (w1, b1, d1) = run();
    let (w2, b2, d2) = run();
    assert_eq!(w1.blocks.records.len(), w2.blocks.records.len());
    for (x, y) in w1.blocks.records.iter().zip(&w2.blocks.records) {
        assert_eq!(x.block, y.block);
        assert_eq!(x.demand_weight, y.demand_weight);
        assert_eq!(x.cell_rate, y.cell_rate);
    }
    assert_eq!(b1.len(), b2.len());
    for (x, y) in b1.iter().zip(b2.iter()) {
        assert_eq!(x, y);
    }
    assert_eq!(d1.len(), d2.len());
    for (x, y) in d1.iter().zip(d2.iter()) {
        assert_eq!(x.block, y.block);
        assert!((x.du - y.du).abs() < 1e-12);
    }
}

#[test]
fn same_seed_same_classification() {
    let run = || {
        let cfg = WorldConfig::mini().with_seed(7);
        let min_hits = cfg.scaled_min_beacon_hits();
        let world = World::generate(cfg);
        let (beacons, demand) = generate_datasets(&world);
        Pipeline::new(&beacons, &demand)
            .as_db(&world.as_db)
            .carriers(&world.carriers)
            .study_config(StudyConfig::default().with_min_hits(min_hits))
            .run()
            .expect("default study config is valid")
            .into_study()
    };
    let s1 = run();
    let s2 = run();
    assert_eq!(s1.classification.len(), s2.classification.len());
    assert_eq!(s1.filter.cellular_ases, s2.filter.cellular_ases);
    assert_eq!(s1.filter.table5_counts(), s2.filter.table5_counts());
    assert!((s1.view.global_cellular_pct() - s2.view.global_cellular_pct()).abs() < 1e-12);
}

#[test]
fn different_seeds_differ_but_preserve_shape() {
    let study = |seed: u64| {
        let cfg = WorldConfig::mini().with_seed(seed);
        let min_hits = cfg.scaled_min_beacon_hits();
        let world = World::generate(cfg);
        let (beacons, demand) = generate_datasets(&world);
        Pipeline::new(&beacons, &demand)
            .as_db(&world.as_db)
            .carriers(&world.carriers)
            .study_config(StudyConfig::default().with_min_hits(min_hits))
            .run()
            .expect("default study config is valid")
            .into_study()
    };
    let s1 = study(1);
    let s2 = study(2);
    // The exact cellular sets differ…
    assert_ne!(
        s1.classification.len(),
        s2.classification.len(),
        "different seeds should differ in detail"
    );
    // …but the calibrated shapes hold for both.
    for s in [&s1, &s2] {
        let pct = s.view.global_cellular_pct();
        assert!((12.0..22.0).contains(&pct), "global cellular {pct:.1}%");
        let mixed = s.mixed.mixed_fraction();
        assert!((0.45..0.75).contains(&mixed), "mixed fraction {mixed:.2}");
    }
}

#[test]
fn dns_generation_is_deterministic() {
    let world = World::generate(WorldConfig::mini().with_seed(5));
    let a = cellspotting::dnssim::generate_dns(&world);
    let b = cellspotting::dnssim::generate_dns(&world);
    assert_eq!(a.resolvers.len(), b.resolvers.len());
    assert_eq!(a.affinities.len(), b.affinities.len());
    for (x, y) in a.affinities.iter().zip(&b.affinities) {
        assert_eq!(x.block, y.block);
        assert_eq!(x.resolver, y.resolver);
        assert_eq!(x.weight, y.weight);
    }
}
