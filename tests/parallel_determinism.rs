//! The parallel pipeline's two contracts:
//!
//! 1. **Thread-count invariance** — every parallel stage (world
//!    generation, dataset sampling, event simulation, the full study) is
//!    keyed by per-block/per-operator RNG streams and merged in a fixed
//!    order, so its output is *byte-identical* no matter how many rayon
//!    threads run it.
//! 2. **Switch-noise symmetry** — §3.1's interface-switch noise is a true
//!    toggle (cellular→wifi, anything-else→cellular), so event-mode
//!    cellular ratios converge to the latent `cell_rate` from above *and*
//!    below instead of being systematically inflated.

use std::collections::HashMap;

use cellspotting::cdnsim::{aggregate_events, generate_datasets, simulate_events, EventSimConfig};
use cellspotting::cellspot::{Pipeline, StudyConfig};
use cellspotting::worldgen::{World, WorldConfig};

/// Generate a mini world and run the full study, returning the study's
/// canonical JSON serialization (the timing field is serde-skipped, so
/// wall-clock noise never leaks into the bytes).
fn study_json() -> String {
    let cfg = WorldConfig::mini().with_seed(0xD15EA5E);
    let min_hits = cfg.scaled_min_beacon_hits();
    let world = World::generate(cfg);
    let (beacons, demand) = generate_datasets(&world);
    let dns = cellspotting::dnssim::generate_dns(&world);
    let study = Pipeline::new(&beacons, &demand)
        .as_db(&world.as_db)
        .carriers(&world.carriers)
        .dns(&dns)
        .study_config(StudyConfig::default().with_min_hits(min_hits))
        .run()
        .expect("default study config is valid")
        .into_study();
    serde_json::to_string(&study).expect("study serializes")
}

#[test]
fn single_and_multi_thread_studies_are_byte_identical() {
    let run_with = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("local rayon pool")
            .install(study_json)
    };
    let one = run_with(1);
    let many = run_with(4);
    assert_eq!(
        one, many,
        "serialized Study must not depend on the rayon thread count"
    );
}

#[test]
fn event_simulation_is_thread_count_invariant() {
    let run_with = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("local rayon pool")
            .install(|| {
                let world = World::generate(WorldConfig::mini());
                simulate_events(&world, &EventSimConfig::default())
            })
    };
    let one = run_with(1);
    let many = run_with(3);
    assert_eq!(one.len(), many.len());
    for (a, b) in one.iter().zip(&many) {
        assert_eq!(a, b, "event streams must match event-for-event");
    }
}

/// With the switch rate cranked up, a cellular block whose latent rate is
/// `r` sees an expected event-mode ratio of `r(1−s) + (1−r)s`: the noise
/// *removes* cellular labels from high-rate blocks (convergence from
/// below) and *adds* them to low-rate blocks (convergence from above).
/// The pre-fix one-sided flip could only ever add cellular labels, making
/// every deviation non-negative.
#[test]
fn switch_noise_is_a_symmetric_toggle() {
    let s = 0.3;
    let world = World::generate(WorldConfig::mini());
    // Enough loads that the near-zero-rate pool (infra blocks, which only
    // attract the per-block beacon floor) accumulates a usable NetInfo
    // sample: each floor block sees ~3 hits per 600k-hit budget, and event
    // mode generates page_loads × ~0.132 NetInfo hits against that budget.
    let cfg = EventSimConfig {
        page_loads: 1_500_000,
        clients_per_block: 40,
        interface_switch_rate: s,
        ..Default::default()
    };
    let events = simulate_events(&world, &cfg);
    let ds = aggregate_events("t", &events);
    let truth: HashMap<_, _> = world.blocks.records.iter().map(|r| (r.block, r)).collect();

    // Convergence from below: well-sampled cellular blocks with high
    // latent rates must land *under* the latent rate on average, near the
    // symmetric-toggle expectation.
    let mut dev_latent = Vec::new();
    let mut dev_model = Vec::new();
    // Convergence from above: pooled ratio over near-zero-rate cellular
    // space (infrastructure) must land near `s`, strictly above latent.
    let mut low_cell = 0u64;
    let mut low_netinfo = 0u64;
    for r in ds.iter() {
        let t = truth[&r.block];
        if !t.access.is_cellular() {
            continue;
        }
        let latent = t.cell_rate as f64;
        if latent <= 0.2 {
            low_cell += r.cellular_hits;
            low_netinfo += r.netinfo_hits;
        }
        if r.netinfo_hits >= 150 && latent >= 0.55 {
            let ratio = r.cellular_ratio().expect("netinfo hits present");
            dev_latent.push(ratio - latent);
            dev_model.push(ratio - (latent * (1.0 - s) + (1.0 - latent) * s));
        }
    }

    assert!(
        dev_latent.len() >= 4,
        "need several well-sampled high-rate cellular blocks, got {}",
        dev_latent.len()
    );
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let mean_latent_dev = mean(&dev_latent);
    assert!(
        mean_latent_dev < -0.02,
        "high-rate blocks must converge from below (toggle removes \
         cellular labels); mean deviation {mean_latent_dev:.4}"
    );
    let mean_model_dev = mean(&dev_model);
    assert!(
        mean_model_dev.abs() < 0.1,
        "deviations must match the symmetric-toggle expectation; \
         mean residual {mean_model_dev:.4}"
    );

    assert!(
        low_netinfo >= 60,
        "need pooled low-rate samples, got {low_netinfo}"
    );
    let pooled = low_cell as f64 / low_netinfo as f64;
    assert!(
        (s - 0.15..=s + 0.15).contains(&pooled),
        "near-zero-rate cellular space must converge from above, toward \
         the switch rate {s}; pooled ratio {pooled:.4}"
    );
}
