//! Integration test of the temporal extension: evolve a world over
//! several months, re-measure and re-classify each month, and check the
//! stability findings the extension reports.

use cellspotting::cdnsim::generate_datasets;
use cellspotting::cellspot::{BlockIndex, Classification, TemporalAnalysis};
use cellspotting::worldgen::{world_at_month, ChurnConfig, World, WorldConfig};

fn monthly_classifications(
    world: &World,
    churn: &ChurnConfig,
    months: u32,
) -> Vec<(Classification, BlockIndex)> {
    (0..=months)
        .map(|m| {
            let w = world_at_month(world, churn, m);
            let (beacons, demand) = generate_datasets(&w);
            let index = BlockIndex::build(&beacons, &demand);
            let class = Classification::with_default_threshold(&index);
            (class, index)
        })
        .collect()
}

#[test]
fn cellular_set_churns_but_demand_stays_concentrated() {
    let world = World::generate(WorldConfig::mini());
    let months = monthly_classifications(&world, &ChurnConfig::default(), 4);
    let analysis = TemporalAnalysis::build(&months);
    assert_eq!(analysis.transitions.len(), 4);

    for t in &analysis.transitions {
        // Real churn happens…
        assert!(t.appeared > 0, "month {}: no new cellular blocks", t.month);
        assert!(t.disappeared > 0, "month {}: no churned blocks", t.month);
        // …but most of the set persists month over month.
        assert!(
            t.persistence() > 0.6,
            "month {}: persistence {:.3}",
            t.month,
            t.persistence()
        );
        assert!(
            t.jaccard > 0.5,
            "month {}: jaccard {:.3}",
            t.month,
            t.jaccard
        );
        // The extension's takeaway: demand-weighted stability exceeds
        // block-count stability, because churn lives in the idle tail
        // while the CGN heavy hitters persist.
        assert!(
            t.persisted_demand_fraction > t.persistence() - 0.1,
            "month {}: demand persistence {:.3} vs block persistence {:.3}",
            t.month,
            t.persisted_demand_fraction,
            t.persistence()
        );
    }
    assert!(analysis.mean_persistence() > 0.7);
    assert!(analysis.mean_persisted_demand() > 0.7);
}

#[test]
fn zero_churn_is_stable_up_to_sampling_noise() {
    let world = World::generate(WorldConfig::mini());
    let frozen = ChurnConfig {
        cell_block_churn: 0.0,
        fixed_block_churn: 0.0,
        demand_drift_sigma: 0.0,
        cellular_growth: 1.0,
    };
    let months = monthly_classifications(&world, &frozen, 2);
    let analysis = TemporalAnalysis::build(&months);
    for t in &analysis.transitions {
        // Identical worlds → identical datasets → identical classification
        // (dataset sampling is keyed by the world's seed, which does not
        // change when evolution is a no-op).
        assert!(
            (t.jaccard - 1.0).abs() < 1e-12,
            "month {}: jaccard {:.4} under zero churn",
            t.month,
            t.jaccard
        );
    }
}

#[test]
fn heavier_churn_lowers_persistence() {
    let world = World::generate(WorldConfig::mini());
    let light = TemporalAnalysis::build(&monthly_classifications(
        &world,
        &ChurnConfig {
            cell_block_churn: 0.03,
            ..Default::default()
        },
        3,
    ));
    let heavy = TemporalAnalysis::build(&monthly_classifications(
        &world,
        &ChurnConfig {
            cell_block_churn: 0.25,
            ..Default::default()
        },
        3,
    ));
    assert!(
        heavy.mean_persistence() < light.mean_persistence(),
        "heavy churn {:.3} should trail light churn {:.3}",
        heavy.mean_persistence(),
        light.mean_persistence()
    );
}
