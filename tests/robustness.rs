//! Failure-injection and degenerate-input robustness: the pipeline must
//! handle empty, tiny, and pathological datasets without panicking and
//! with sensible (empty) results.

use std::fs;
use std::path::PathBuf;

use cellspotting::asdb::AsDatabase;
use cellspotting::cdnsim::{
    BeaconDataset, BeaconRecord, CdnConfig, DemandDataset, DemandRecord, EventSource,
};
use cellspotting::cellspot::{
    v6_deployment, BlockIndex, Classification, Pipeline, RatioDistributions, StudyConfig, WorldView,
};
use cellspotting::cellstream::{IngestEngine, IngestError, ResolverMap, Snapshot, StreamConfig};
use cellspotting::netaddr::{Asn, Block24, BlockId};
use cellspotting::worldgen::{World, WorldConfig};

#[test]
fn empty_datasets_produce_empty_study() {
    let beacons = BeaconDataset::from_records("t", vec![]);
    let demand = DemandDataset::from_raw("t", vec![]);
    let study = Pipeline::new(&beacons, &demand)
        .run()
        .expect("default study config is valid")
        .into_study();
    assert_eq!(study.index.len(), 0);
    assert!(study.classification.is_empty());
    assert!(study.filter.candidates.is_empty());
    assert!(study.filter.cellular_ases.is_empty());
    assert_eq!(study.mixed.counts(), (0, 0));
    assert_eq!(study.ranking.rows.len(), 0);
    assert_eq!(study.view.global_cellular_pct(), 0.0);
    assert!(study.validations.is_empty());
    // Rendering the artifacts over an empty study must not panic either.
    let artifacts = cellspotting::report::all_artifacts(
        &study,
        &AsDatabase::new(),
        &cellspotting::dnssim::DnsSim::default(),
    );
    for a in &artifacts {
        let _ = a.render();
        let _ = a.to_csv();
    }
}

#[test]
fn beacon_only_world_classifies_without_demand() {
    // All blocks have beacons, nothing has demand: classification works,
    // demand-weighted quantities are all zero.
    let mk = |i: u32, cell: u64| BeaconRecord {
        block: BlockId::V4(Block24::from_index(i)),
        asn: Asn(1),
        hits_total: 100,
        netinfo_hits: 100,
        cellular_hits: cell,
        wifi_hits: 100 - cell,
        other_hits: 0,
    };
    let beacons = BeaconDataset::from_records("t", vec![mk(1, 95), mk(2, 5)]);
    let demand = DemandDataset::from_raw("t", vec![]);
    let index = BlockIndex::build(&beacons, &demand);
    let class = Classification::with_default_threshold(&index);
    assert_eq!(class.len(), 1);
    let dist = RatioDistributions::build(&index);
    assert_eq!(dist.v4_subnets.len(), 2);
    assert!(dist.v4_demand.is_empty(), "no demand → empty weighted CDF");
}

#[test]
fn demand_only_world_detects_nothing() {
    // Demand with zero beacon coverage: nothing is classifiable, the
    // world view still rolls up total demand.
    let demand = DemandDataset::from_raw(
        "t",
        vec![DemandRecord {
            block: BlockId::V4(Block24::from_index(7)),
            asn: Asn(1),
            du: 5.0,
        }],
    );
    let beacons = BeaconDataset::from_records("t", vec![]);
    let index = BlockIndex::build(&beacons, &demand);
    let class = Classification::with_default_threshold(&index);
    assert!(class.is_empty());
    let db = AsDatabase::from_records(vec![cellspotting::asdb::AsRecord::new(
        Asn(1),
        "op",
        cellspotting::netaddr::CountryCode::literal("US"),
        cellspotting::netaddr::Continent::NorthAmerica,
        cellspotting::asdb::AsKind::FixedOnly,
    )]);
    let view = WorldView::build(&index, &class, &db);
    assert_eq!(view.global_cellular_pct(), 0.0);
    assert!((view.global_total_du - 100_000.0).abs() < 1e-6);
}

#[test]
fn single_block_world() {
    let beacons = BeaconDataset::from_records(
        "t",
        vec![BeaconRecord {
            block: BlockId::V4(Block24::from_index(1)),
            asn: Asn(9),
            hits_total: 1,
            netinfo_hits: 1,
            cellular_hits: 1,
            wifi_hits: 0,
            other_hits: 0,
        }],
    );
    let demand = DemandDataset::from_raw(
        "t",
        vec![DemandRecord {
            block: BlockId::V4(Block24::from_index(1)),
            asn: Asn(9),
            du: 1.0,
        }],
    );
    let study = Pipeline::new(&beacons, &demand)
        .study_config(StudyConfig::default().with_min_hits(1.0))
        .run()
        .expect("valid study config")
        .into_study();
    // One cellular block, whole world's demand: the single AS is a
    // candidate, passes rules 1-2, and dies at rule 3 (no known class).
    assert_eq!(study.classification.len(), 1);
    assert_eq!(study.filter.candidates, vec![Asn(9)]);
    assert!(study.filter.cellular_ases.is_empty());
    assert_eq!(study.filter.removed_class, vec![Asn(9)]);
}

#[test]
fn v6_deployment_handles_empty_inputs() {
    let beacons = BeaconDataset::from_records("t", vec![]);
    let demand = DemandDataset::from_raw("t", vec![]);
    let index = BlockIndex::build(&beacons, &demand);
    let class = Classification::with_default_threshold(&index);
    let v6 = v6_deployment(&[], &index, &class, &AsDatabase::new());
    assert_eq!(v6.v6_ases, 0);
    assert_eq!(v6.fraction(), 0.0);
    assert!(v6.top_countries.is_empty());
}

#[test]
fn nan_free_everywhere_on_degenerate_inputs() {
    // One block with hits but no NetInfo data at all.
    let beacons = BeaconDataset::from_records(
        "t",
        vec![BeaconRecord {
            block: BlockId::V4(Block24::from_index(3)),
            asn: Asn(2),
            hits_total: 50,
            netinfo_hits: 0,
            cellular_hits: 0,
            wifi_hits: 0,
            other_hits: 0,
        }],
    );
    let demand = DemandDataset::from_raw("t", vec![]);
    let study = Pipeline::new(&beacons, &demand)
        .run()
        .expect("default study config is valid")
        .into_study();
    assert!(study.view.global_cellular_pct().is_finite());
    assert!(study.mixed.mixed_fraction().is_finite());
    assert!(study.ranking.top_share(10).is_finite());
    assert!(
        study.classification.is_empty(),
        "no NetInfo → unclassifiable"
    );
}

#[test]
fn degenerate_stream_configs_are_errors_not_panics() {
    let zero_shards = StreamConfig {
        shards: 0,
        ..Default::default()
    };
    let err = IngestEngine::try_with_layout(zero_shards, 4, 28, ResolverMap::empty())
        .expect_err("zero shards must be rejected");
    match err {
        IngestError::BadConfig(msg) => assert!(msg.contains("shard"), "{msg}"),
        other => panic!("unexpected error: {other:?}"),
    }

    let bad_precision = StreamConfig {
        hll_precision: 0,
        ..Default::default()
    };
    assert!(IngestEngine::try_with_layout(bad_precision, 4, 28, ResolverMap::empty()).is_err());

    let no_counters = StreamConfig {
        heavy_capacity: 0,
        ..Default::default()
    };
    assert!(IngestEngine::try_with_layout(no_counters, 4, 28, ResolverMap::empty()).is_err());
}

#[test]
fn checkpoint_at_epoch_zero_restores_to_a_full_run() {
    // `--stop-after-epoch 0` leaves a checkpoint with nothing ingested;
    // resuming it must replay the whole stream bit-for-bit.
    let world = World::generate(WorldConfig::mini());
    let source = EventSource::new(&world, CdnConfig::default(), 3);
    let cfg = StreamConfig {
        shards: 2,
        ..Default::default()
    };
    let mut direct = IngestEngine::for_source(cfg, &source, ResolverMap::empty());
    direct.run_to_end(&source);

    let snap = IngestEngine::for_source(cfg, &source, ResolverMap::empty()).snapshot();
    assert_eq!(snap.epochs_done, 0);
    let mut resumed =
        IngestEngine::try_restore(&snap, ResolverMap::empty()).expect("epoch-0 snapshot restores");
    resumed.run_to_end(&source);
    assert_eq!(resumed.snapshot().to_json(), direct.snapshot().to_json());
}

#[test]
fn resume_from_the_final_epoch_is_finished_not_a_panic() {
    let world = World::generate(WorldConfig::mini());
    let source = EventSource::new(&world, CdnConfig::default(), 2);
    let cfg = StreamConfig {
        shards: 2,
        ..Default::default()
    };
    let mut engine = IngestEngine::for_source(cfg, &source, ResolverMap::empty());
    engine.run_to_end(&source);

    let mut resumed = IngestEngine::try_restore(&engine.snapshot(), ResolverMap::empty())
        .expect("final snapshot restores");
    assert!(resumed.finished());
    let err = resumed
        .try_ingest_epoch(&source, None)
        .expect_err("nothing left to ingest");
    assert_eq!(err, IngestError::Finished { epochs: 2 });
    // Finalizing a fully-resumed engine still works.
    let outputs = resumed.finalize();
    let direct = engine.finalize();
    assert_eq!(outputs.beacons.len(), direct.beacons.len());
    assert_eq!(outputs.demand.len(), direct.demand.len());
}

#[test]
fn doctored_snapshots_are_rejected_on_restore() {
    let world = World::generate(WorldConfig::mini());
    let source = EventSource::new(&world, CdnConfig::default(), 2);
    let cfg = StreamConfig {
        shards: 2,
        ..Default::default()
    };
    let mut engine = IngestEngine::for_source(cfg, &source, ResolverMap::empty());
    engine.ingest_epoch(&source);
    let snap = engine.snapshot();

    let mut fewer_shards = snap.clone();
    fewer_shards.shards.pop();
    assert!(IngestEngine::try_restore(&fewer_shards, ResolverMap::empty()).is_err());

    let mut wrong_config = snap.clone();
    wrong_config.config.shards += 1;
    assert!(IngestEngine::try_restore(&wrong_config, ResolverMap::empty()).is_err());

    let mut ahead = snap.clone();
    ahead.epochs_done = ahead.epochs_total + 1;
    assert!(IngestEngine::try_restore(&ahead, ResolverMap::empty()).is_err());

    let mut future_version = snap;
    future_version.version += 1;
    assert!(IngestEngine::try_restore(&future_version, ResolverMap::empty()).is_err());
}

#[test]
fn unreadable_checkpoint_files_fail_cleanly() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("robustness_ckpt");
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("tmp dir");

    // Missing file: a clean io::Error, not a panic.
    assert!(Snapshot::read_from(&dir.join("absent.json")).is_err());

    // Torn write (invalid JSON, no footer).
    let torn = dir.join("torn.json");
    fs::write(&torn, "{ \"version\": 1").expect("write torn file");
    assert!(Snapshot::read_from(&torn).is_err());

    // A well-formed snapshot body without the integrity footer is also
    // rejected: only sealed files count as checkpoints.
    let world = World::generate(WorldConfig::mini());
    let source = EventSource::new(&world, CdnConfig::default(), 1);
    let engine = IngestEngine::for_source(StreamConfig::default(), &source, ResolverMap::empty());
    let unsealed = dir.join("unsealed.json");
    fs::write(&unsealed, engine.snapshot().to_json()).expect("write unsealed file");
    assert!(Snapshot::read_from(&unsealed).is_err());

    let _ = fs::remove_dir_all(&dir);
}
