//! The two dataset-generation modes must agree: event-level simulation
//! (full causal chain, one page load at a time) and aggregate mode
//! (closed-form per-block draws) produce the same per-block cellular
//! ratios, NetInfo availability, and classification outcomes.

use cellspotting::cdnsim::{
    aggregate_events, generate_beacons, generate_datasets, simulate_events, CdnConfig,
    EventSimConfig,
};
use cellspotting::cellspot::{BlockIndex, Classification};
use cellspotting::worldgen::{World, WorldConfig};

#[test]
fn ratios_converge_between_modes() {
    let world = World::generate(WorldConfig::mini());
    let agg = generate_beacons(&world, &CdnConfig::default());
    let events = simulate_events(
        &world,
        &EventSimConfig {
            page_loads: 400_000,
            ..Default::default()
        },
    );
    let evt = aggregate_events("2016-12", &events);

    let mut compared = 0;
    let mut total_dev = 0.0;
    for r in evt.iter() {
        if r.netinfo_hits < 150 {
            continue;
        }
        let Some(other) = agg.get(r.block) else {
            continue;
        };
        if other.netinfo_hits < 150 {
            continue;
        }
        let (Some(a), Some(b)) = (r.cellular_ratio(), other.cellular_ratio()) else {
            continue;
        };
        total_dev += (a - b).abs();
        compared += 1;
    }
    assert!(
        compared >= 4,
        "need well-sampled blocks in both modes: {compared}"
    );
    let mean_dev = total_dev / compared as f64;
    assert!(
        mean_dev < 0.15,
        "modes diverge: mean |Δratio| = {mean_dev:.3} over {compared} blocks"
    );
}

#[test]
fn netinfo_availability_matches_between_modes() {
    let world = World::generate(WorldConfig::mini());
    let agg = generate_beacons(&world, &CdnConfig::default());
    let events = simulate_events(
        &world,
        &EventSimConfig {
            page_loads: 300_000,
            ..Default::default()
        },
    );
    let agg_share = agg.netinfo_hits_total() as f64 / agg.hits_total() as f64;
    let evt_netinfo = events.iter().filter(|e| e.connection.is_some()).count();
    let evt_share = evt_netinfo as f64 / events.len() as f64;
    assert!(
        (agg_share - evt_share).abs() < 0.02,
        "NetInfo share: aggregate {agg_share:.3} vs event {evt_share:.3}"
    );
}

#[test]
fn classification_agrees_on_well_sampled_blocks() {
    let world = World::generate(WorldConfig::mini());
    let (_, demand) = generate_datasets(&world);
    let agg = generate_beacons(&world, &CdnConfig::default());
    let events = simulate_events(
        &world,
        &EventSimConfig {
            page_loads: 400_000,
            ..Default::default()
        },
    );
    let evt = aggregate_events("2016-12", &events);

    let idx_a = BlockIndex::build(&agg, &demand);
    let idx_e = BlockIndex::build(&evt, &demand);
    let class_a = Classification::with_default_threshold(&idx_a);
    let class_e = Classification::with_default_threshold(&idx_e);

    let mut agree = 0;
    let mut total = 0;
    for r in evt.iter() {
        if r.netinfo_hits < 100 {
            continue;
        }
        let Some(other) = agg.get(r.block) else {
            continue;
        };
        if other.netinfo_hits < 100 {
            continue;
        }
        // Skip blocks whose latent rate sits near the threshold: both
        // modes legitimately flip coins there.
        let truth = world
            .blocks
            .records
            .iter()
            .find(|b| b.block == r.block)
            .expect("observed blocks exist in the world");
        if (truth.cell_rate - 0.5).abs() < 0.2 {
            continue;
        }
        total += 1;
        if class_a.is_cellular(r.block) == class_e.is_cellular(r.block) {
            agree += 1;
        }
    }
    assert!(total >= 4, "need comparable blocks, got {total}");
    // Event mode's client-level clustering can still flip the occasional
    // block whose realized client mix strays across the threshold; demand
    // near-unanimity, not identity.
    assert!(
        agree as f64 >= total as f64 * 0.95,
        "modes disagree on {} of {total} clear-cut blocks",
        total - agree
    );
}
