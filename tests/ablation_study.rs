//! Integration test of the ablation extensions on a generated world,
//! scored against ground truth where the oracle adds information.

use cellspotting::cdnsim::generate_datasets;
use cellspotting::cellspot::{
    asn_level_ablation, granularity_sweep, rule_ablation, AsnStrategy, FilterConfig, Pipeline,
    StudyConfig,
};
use cellspotting::worldgen::{World, WorldConfig};

fn study() -> (World, cellspotting::cellspot::Study) {
    // Demo scale: the mini preset's rule-2 hit threshold (0.6 hits) is
    // degenerate — almost no AS fails it — so the rule ablation needs the
    // larger world.
    let cfg = WorldConfig::demo();
    let min_hits = cfg.scaled_min_beacon_hits();
    let world = World::generate(cfg);
    let (beacons, demand) = generate_datasets(&world);
    let s = Pipeline::new(&beacons, &demand)
        .as_db(&world.as_db)
        .carriers(&world.carriers)
        .study_config(StudyConfig::default().with_min_hits(min_hits))
        .run()
        .expect("default study config is valid")
        .into_study();
    (world, s)
}

#[test]
fn asn_level_identification_is_materially_worse() {
    let (_, s) = study();
    // The straw-man sweeps all demand of candidate ASes into "cellular":
    // overcounting dominated by mixed incumbents' fixed arms.
    let any = asn_level_ablation(
        &s.index,
        &s.classification,
        &s.as_aggregates,
        AsnStrategy::AnyCellularBlock,
    );
    assert!(
        any.relative_error() > 1.0,
        "straw-man error {:.2} should exceed 100% of cellular demand",
        any.relative_error()
    );
    // Majority strategies fix the overcount but lose mixed-AS cellular
    // demand instead — still far worse than prefix-level.
    for strategy in [AsnStrategy::MajorityBlocks, AsnStrategy::MajorityDemand] {
        let abl = asn_level_ablation(&s.index, &s.classification, &s.as_aggregates, strategy);
        assert!(
            abl.relative_error() > 0.05,
            "{strategy:?}: error {:.3} should be visible",
            abl.relative_error()
        );
        assert!(
            abl.undercounted_du > 0.0,
            "{strategy:?} must miss mixed-AS cellular demand"
        );
    }
}

#[test]
fn coarser_grains_monotonically_relabel_more_demand() {
    let (_, s) = study();
    let sweep = granularity_sweep(&s.index, &s.classification);
    assert_eq!(sweep[0].prefix_len, 24);
    assert_eq!(sweep[0].relabeled_du, 0.0, "native grain is lossless");
    for w in sweep.windows(2) {
        assert!(
            w[1].relabeled_du >= w[0].relabeled_du * 0.8,
            "/{} relabels {:.1} DU but /{} only {:.1}",
            w[0].prefix_len,
            w[0].relabeled_du,
            w[1].prefix_len,
            w[1].relabeled_du
        );
        assert!(
            w[1].cellular_aggregates <= w[0].cellular_aggregates,
            "coarser grains have fewer aggregates"
        );
    }
    let coarsest = sweep.last().expect("non-empty sweep");
    assert!(
        coarsest.relabeled_du > 100.0,
        "/16 aggregation must visibly mislabel demand: {:.1} DU",
        coarsest.relabeled_du
    );
}

#[test]
fn every_filter_rule_guards_against_real_false_positives() {
    let (world, s) = study();
    let cfg = FilterConfig {
        min_cell_du: s.config.min_cell_du,
        min_netinfo_hits: s.config.min_netinfo_hits,
    };
    let abl = rule_ablation(&s.as_aggregates, &world.as_db, &cfg);
    let extra = abl.extra_admitted();
    for (i, e) in extra.iter().enumerate() {
        assert!(*e > 0, "rule {} admits nothing extra when disabled", i + 1);
    }
    // Score the extra admissions against ground truth: the ASes each rule
    // guards against are overwhelmingly NOT cellular access networks.
    let truth: std::collections::HashSet<_> = world
        .operators
        .ops
        .iter()
        .filter(|o| {
            o.kind.is_cellular_access() && o.role == cellspotting::worldgen::OperatorRole::Normal
        })
        .map(|o| o.asn)
        .collect();
    let baseline: std::collections::HashSet<_> =
        abl.baseline.cellular_ases.iter().copied().collect();
    for (name, outcome) in [
        ("rule1", &abl.without_demand_rule),
        ("rule2", &abl.without_hits_rule),
        ("rule3", &abl.without_class_rule),
    ] {
        let extras: Vec<_> = outcome
            .cellular_ases
            .iter()
            .filter(|a| !baseline.contains(a))
            .collect();
        if extras.is_empty() {
            continue;
        }
        let false_extras = extras.iter().filter(|a| !truth.contains(**a)).count();
        let fp_rate = false_extras as f64 / extras.len() as f64;
        assert!(
            fp_rate > 0.5,
            "{name}: most extra admissions should be spurious, got {fp_rate:.2}"
        );
    }
}
