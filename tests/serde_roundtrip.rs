//! Serialization: datasets and study outputs must survive a JSON round
//! trip — the formats downstream users would persist and reload.

use cellspotting::cdnsim::{generate_datasets, BeaconDataset, DemandDataset};
use cellspotting::cellspot::{BlockIndex, Classification, Pipeline, Study, StudyConfig};
use cellspotting::worldgen::{World, WorldConfig};

fn mini_world() -> World {
    World::generate(WorldConfig::mini())
}

#[test]
fn datasets_round_trip() {
    let world = mini_world();
    let (beacons, demand) = generate_datasets(&world);
    let b_json = serde_json::to_string(&beacons).expect("serialize BEACON");
    let d_json = serde_json::to_string(&demand).expect("serialize DEMAND");
    let b2: BeaconDataset = serde_json::from_str(&b_json).expect("deserialize BEACON");
    let d2: DemandDataset = serde_json::from_str(&d_json).expect("deserialize DEMAND");
    assert_eq!(beacons.len(), b2.len());
    assert_eq!(demand.len(), d2.len());
    assert_eq!(beacons.netinfo_hits_total(), b2.netinfo_hits_total());
    assert!((demand.total_du() - d2.total_du()).abs() < 1e-6);
    // Lookups still work after the round trip.
    let first = beacons.iter().next().expect("non-empty");
    assert_eq!(b2.get(first.block), Some(first));
}

#[test]
fn classification_round_trip_preserves_membership() {
    let world = mini_world();
    let (beacons, demand) = generate_datasets(&world);
    let index = BlockIndex::build(&beacons, &demand);
    let class = Classification::with_default_threshold(&index);
    let json = serde_json::to_string(&class).expect("serialize");
    let back: Classification = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(class.len(), back.len());
    for (block, asn) in class.iter() {
        assert!(
            back.is_cellular(block),
            "{block} ({asn}) lost in round trip"
        );
    }
}

#[test]
fn full_study_round_trip() {
    let cfg = WorldConfig::mini();
    let min_hits = cfg.scaled_min_beacon_hits();
    let world = World::generate(cfg);
    let (beacons, demand) = generate_datasets(&world);
    let study = Pipeline::new(&beacons, &demand)
        .as_db(&world.as_db)
        .carriers(&world.carriers)
        .study_config(StudyConfig::default().with_min_hits(min_hits))
        .run()
        .expect("default study config is valid")
        .into_study();
    let json = serde_json::to_string(&study).expect("serialize study");
    let back: Study = serde_json::from_str(&json).expect("deserialize study");
    assert_eq!(study.classification.len(), back.classification.len());
    assert_eq!(study.filter.table5_counts(), back.filter.table5_counts());
    assert_eq!(study.validations.len(), back.validations.len());
    assert!((study.view.global_cellular_pct() - back.view.global_cellular_pct()).abs() < 1e-9);
}

#[test]
fn world_round_trip_with_index_rebuild() {
    let world = mini_world();
    let json = serde_json::to_string(&world).expect("serialize world");
    let mut back: World = serde_json::from_str(&json).expect("deserialize world");
    // Lookups work through the linear fallback, then O(1) after rebuild.
    let asn = world.operators.showcase_mixed;
    assert_eq!(back.operator(asn).expect("found").asn, asn);
    back.rebuild_index();
    assert_eq!(back.operator(asn).expect("found").asn, asn);
    assert_eq!(world.blocks.records.len(), back.blocks.records.len());
    // Carrier tries need rebuilding after deserialization.
    let mut carrier = back.carriers[0].clone();
    carrier.build_trie();
    let (cell, fixed) = carrier.count_blocks24();
    let (cell0, fixed0) = world.carriers[0].count_blocks24();
    assert_eq!((cell, fixed), (cell0, fixed0));
}
