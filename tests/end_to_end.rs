//! End-to-end integration: generate a demo-scale world, run the full
//! pipeline, and assert the *shape* of every major paper result — who
//! wins, by roughly what factor, where the crossovers fall.

use cellspotting::cdnsim::generate_datasets;
use cellspotting::cellspot::{Pipeline, Study, StudyConfig};
use cellspotting::netaddr::Continent;
use cellspotting::worldgen::{World, WorldConfig};

fn demo_study() -> (World, Study) {
    let cfg = WorldConfig::demo();
    let min_hits = cfg.scaled_min_beacon_hits();
    let world = World::generate(cfg);
    let (beacons, demand) = generate_datasets(&world);
    let dns = cellspotting::dnssim::generate_dns(&world);
    let study = Pipeline::new(&beacons, &demand)
        .as_db(&world.as_db)
        .carriers(&world.carriers)
        .dns(&dns)
        .study_config(StudyConfig::default().with_min_hits(min_hits))
        .run()
        .expect("default study config is valid")
        .into_study();
    (world, study)
}

/// §4.1 / Fig. 2: ratios are bimodal — most blocks near 0, a clear mass
/// near 1, thin middle.
#[test]
fn fig2_ratio_distribution_is_bimodal() {
    let (_, study) = demo_study();
    let d = &study.ratio_distributions;
    let below = d.v4_subnets.eval(0.1);
    let above = 1.0 - d.v4_subnets.eval(0.9);
    let middle = 1.0 - below - above;
    assert!(below > 0.85, "paper 91.3%: got {below:.3}");
    assert!((0.02..0.12).contains(&above), "paper 5.8%: got {above:.3}");
    assert!(middle < 0.10, "paper 2.9%: got {middle:.3}");
    // IPv6 space is even more skewed toward non-cellular.
    assert!(d.v6_subnets.eval(0.1) > d.v4_subnets.eval(0.1));
}

/// §4.2 / Table 3: precision high everywhere; demand-weighted recall
/// dominates CIDR recall; the mixed carrier with idle space (A) has far
/// lower CIDR recall than the dedicated one (B).
#[test]
fn table3_validation_shape() {
    let (_, study) = demo_study();
    let a = &study.validations[0];
    let b = &study.validations[1];
    let c = &study.validations[2];
    for v in [a, b, c] {
        assert!(v.by_cidr.precision() > 0.95, "{}: precision", v.carrier);
        assert!(
            v.by_demand.recall() >= v.by_cidr.recall() - 1e-9,
            "{}: demand recall must dominate",
            v.carrier
        );
    }
    assert!(
        a.by_cidr.recall() < 0.2,
        "Carrier A CIDR recall (paper 0.10)"
    );
    assert!(
        b.by_cidr.recall() > 0.9,
        "Carrier B CIDR recall (paper 0.99)"
    );
    assert!(
        a.by_demand.recall() > 0.6,
        "Carrier A demand recall (paper 0.82): {}",
        a.by_demand.recall()
    );
    assert!(
        c.by_cidr.recall() > a.by_cidr.recall(),
        "Carrier C sits between A and B"
    );
    assert!(c.by_cidr.recall() < b.by_cidr.recall());
}

/// §4.2 / Fig. 3: F1 stays near its max across a wide threshold range.
#[test]
fn fig3_threshold_insensitivity() {
    let (_, study) = demo_study();
    for curve in &study.sweeps {
        let (lo, hi) = curve
            .stable_range(0.05)
            .unwrap_or_else(|| panic!("{}: no plateau", curve.carrier));
        assert!(
            hi - lo > 0.5,
            "{}: plateau [{lo:.2},{hi:.2}] should span most of (0,1)",
            curve.carrier
        );
        assert!(lo <= 0.15, "{}: plateau starts by 0.1", curve.carrier);
    }
}

/// §5 / Table 5: the filter funnel — rule 1 removes by far the most,
/// rules 2 and 3 trim small counts, and the final set is close to the
/// ground-truth 669.
#[test]
fn table5_filter_funnel() {
    let (world, study) = demo_study();
    let (c0, r1, r2, r3) = study.filter.table5_counts();
    assert!(
        c0 > r1 && r1 > r2 && r2 > r3,
        "funnel is strictly shrinking"
    );
    assert!(
        study.filter.removed_low_demand.len() > study.filter.removed_low_hits.len(),
        "rule 1 removes the most (paper 493 vs 53)"
    );
    assert!(
        study.filter.removed_low_demand.len() > study.filter.removed_class.len(),
        "rule 1 removes more than rule 3 (paper 493 vs 49)"
    );
    let truth = world.summary().true_cellular_ases;
    assert!(
        (r3 as f64 - truth as f64).abs() / truth as f64 <= 0.05,
        "final set {r3} within 5% of ground truth {truth}"
    );
    // Both famous proxies were candidates and neither survived.
    for reserved in [15_169u32, 21_837] {
        let asn = cellspotting::netaddr::Asn(reserved);
        assert!(
            study.filter.candidates.contains(&asn),
            "{asn} is a candidate"
        );
        assert!(
            !study.filter.cellular_ases.contains(&asn),
            "{asn} must be filtered (paper §5)"
        );
    }
}

/// §6.1: mixed ASes are the majority (paper 58.6%) yet carry the
/// minority of cellular demand (paper 32.7%).
#[test]
fn mixed_majority_carries_minority_of_demand() {
    let (_, study) = demo_study();
    let frac = study.mixed.mixed_fraction();
    assert!((0.50..0.70).contains(&frac), "mixed fraction {frac:.3}");
    let share = study.mixed.mixed_demand_share();
    assert!(share < 0.5, "mixed demand share {share:.3} (paper 32.7%)");
    assert!(share > 0.1, "mixed ASes still carry real demand");
}

/// §6.2 / Fig. 7: demand is concentrated in the top operators.
#[test]
fn fig7_operator_concentration() {
    let (_, study) = demo_study();
    let top5 = study.ranking.top_share(5);
    let top10 = study.ranking.top_share(10);
    assert!((0.25..0.50).contains(&top5), "paper 35.9%: got {top5:.3}");
    assert!(top10 > top5);
    assert!((0.30..0.55).contains(&top10), "paper 38%: got {top10:.3}");
    // Rank-1 vs rank-10 spread (paper: 8.8x).
    let r = study.ranking.rows[0].cell_share / study.ranking.rows[9].cell_share;
    assert!((3.0..20.0).contains(&r), "rank1/rank10 = {r:.1}");
}

/// §7 / Table 8: global cellular fraction near 16.2% and the continental
/// ordering of cellular reliance.
#[test]
fn table8_continent_ordering() {
    let (_, study) = demo_study();
    let pct = study.view.global_cellular_pct();
    assert!((13.0..20.0).contains(&pct), "paper 16.2%: got {pct:.1}");
    let f = |c: Continent| study.view.demand[c.index()].cellular_fraction_pct();
    // Asia and Africa rely on cellular the most; Europe the least.
    assert!(f(Continent::Asia) > f(Continent::Europe));
    assert!(f(Continent::Africa) > f(Continent::Europe));
    assert!(f(Continent::Africa) > f(Continent::NorthAmerica));
    assert!(f(Continent::Oceania) > f(Continent::SouthAmerica));
    // NA and Asia dominate the global cellular volume.
    let share = |c: Continent| study.view.continent_cell_share_pct(c);
    assert!(share(Continent::NorthAmerica) > 25.0);
    assert!(share(Continent::Asia) > 25.0);
    assert!(share(Continent::Africa) < 10.0);
}

/// §7 / Fig. 12: the country anchors — US biggest by volume but low
/// fraction; Ghana near-total cellular reliance with little volume.
#[test]
fn fig12_country_anchors() {
    let (_, study) = demo_study();
    let scatter = study.view.country_scatter();
    let get = |code: &str| {
        scatter
            .iter()
            .find(|(c, _, _)| c.as_str() == code)
            .unwrap_or_else(|| panic!("{code} missing"))
    };
    let us = get("US");
    let gh = get("GH");
    let fr = get("FR");
    let id = get("ID");
    assert!(
        (0.10..0.25).contains(&us.1),
        "US cfd {:.3} (paper .166)",
        us.1
    );
    assert!(gh.1 > 0.85, "GH cfd {:.3} (paper .959)", gh.1);
    assert!(fr.1 < 0.20, "FR cfd {:.3} (paper .121)", fr.1);
    assert!(
        (0.45..0.75).contains(&id.1),
        "ID cfd {:.3} (paper .63)",
        id.1
    );
    // US volume dwarfs Ghana's.
    assert!(us.2 > gh.2 * 20.0, "US {} DU vs GH {} DU", us.2, gh.2);
    // US holds ≈30% of global cellular demand.
    let us_share = us.2 / study.view.global_cell_du;
    assert!((0.2..0.4).contains(&us_share), "US share {us_share:.3}");
}

/// §6.3 / Fig. 9: most resolvers in mixed ASes serve both populations.
#[test]
fn fig9_resolver_sharing_shape() {
    let (world, study) = demo_study();
    let dns = cellspotting::dnssim::generate_dns(&world);
    let analysis = study.dns.as_ref().expect("DNS analysis present");
    let mixed = study.mixed.mixed_asns();
    let shared = analysis.shared_fraction(&dns, &mixed, 0.02);
    assert!((0.4..0.8).contains(&shared), "paper ~60%: got {shared:.2}");
    let cdf = analysis.mixed_resolver_cdf(&dns, &mixed);
    let median = cdf.quantile(0.5).expect("non-empty resolver CDF");
    assert!(
        (0.05..0.5).contains(&median),
        "median resolver cellular fraction {median:.2} (paper ≈0.25)"
    );
    // The Brazilian-style distant resolvers are detectable.
    let distant = analysis.distant_shared_resolvers(&dns, &mixed, 5.0);
    assert!(!distant.is_empty(), "distant shared resolvers exist");
    for id in distant {
        let r = dns.resolver(id);
        assert!(r.dist_cell_mi > r.dist_fixed_mi * 5.0);
    }
}

/// Table 2's dataset asymmetries: BEACON sees fewer IPv4 blocks than
/// DEMAND, but more IPv6 blocks (ephemeral v6 space across the month).
#[test]
fn table2_dataset_asymmetries() {
    let cfg = WorldConfig::demo();
    let world = World::generate(cfg);
    let (beacons, demand) = generate_datasets(&world);
    let (b4, b6) = beacons.block_counts();
    let (d4, d6) = demand.block_counts();
    let cover = b4 as f64 / d4 as f64;
    assert!((0.6..0.85).contains(&cover), "paper 73%: got {cover:.2}");
    assert!(
        b6 > d6,
        "BEACON v6 blocks exceed DEMAND v6 blocks (Table 2)"
    );
}
