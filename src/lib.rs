//! # cellspotting — facade crate
//!
//! Umbrella crate for the Cell Spotting (IMC 2017) reproduction. It
//! re-exports every workspace crate under one roof so examples, integration
//! tests, and downstream users can depend on a single package:
//!
//! * [`netaddr`] — IP prefixes, /24 & /48 blocks, LPM tries, ASNs, geo.
//! * [`asdb`] — AS metadata (CAIDA-style classes) and carrier ground truth.
//! * [`worldgen`] — synthetic global-Internet ground truth generator.
//! * [`cdnsim`] — CDN measurement platform: BEACON and DEMAND datasets.
//! * [`dnssim`] — DNS resolver assignment and public-DNS usage substrate.
//! * [`cellspot`] — the paper's methodology: classification and analyses.
//! * [`cellstream`] — streaming ingest: sharded incremental aggregation,
//!   sketches, and checkpoint/restore over the event stream.
//! * [`report`] — tables, figure series, and rendering.
//!
//! See `DESIGN.md` for the full system inventory and the per-experiment
//! index, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use asdb;
pub use cdnsim;
pub use cellspot;
pub use cellstream;
pub use dnssim;
pub use netaddr;
pub use report;
pub use worldgen;
