//! # cellspotting — facade crate
//!
//! Umbrella crate for the Cell Spotting (IMC 2017) reproduction. It
//! re-exports every workspace crate under one roof so examples, integration
//! tests, and downstream users can depend on a single package:
//!
//! * [`netaddr`] — IP prefixes, /24 & /48 blocks, LPM tries, ASNs, geo.
//! * [`asdb`] — AS metadata (CAIDA-style classes) and carrier ground truth.
//! * [`worldgen`] — synthetic global-Internet ground truth generator.
//! * [`cdnsim`] — CDN measurement platform: BEACON and DEMAND datasets.
//! * [`dnssim`] — DNS resolver assignment and public-DNS usage substrate.
//! * [`cellspot`] — the paper's methodology: classification and analyses.
//! * [`cellstream`] — streaming ingest: sharded incremental aggregation,
//!   sketches, and checkpoint/restore over the event stream.
//! * [`cellserve`] — serving: the sealed classification artifact, the
//!   frozen flat-array LPM index, and the batch query engine.
//! * [`cellobs`] — zero-dependency observability: spans, counters, gauges,
//!   histograms, and the JSON/Prometheus exporters.
//! * [`report`] — tables, figure series, and rendering.
//!
//! The [`Pipeline`] builder here is the one-call entry point — synthetic
//! world to finished study:
//!
//! ```no_run
//! use cellspotting::{worldgen::WorldConfig, Pipeline};
//!
//! let report = Pipeline::new(WorldConfig::mini())
//!     .run()
//!     .expect("default config is valid");
//! println!("{} cellular blocks", report.study.classification.len());
//! ```
//!
//! See `DESIGN.md` for the full system inventory and the per-experiment
//! index, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use asdb;
pub use cdnsim;
pub use cellobs;
pub use cellserve;
pub use cellspot;
pub use cellstream;
pub use dnssim;
pub use netaddr;
pub use report;
pub use worldgen;

use cellobs::Observer;
use cellspot::{CellspotError, Study, StudyConfig};
use worldgen::WorldConfig;

/// End-to-end pipeline builder: generate a synthetic world from a
/// [`WorldConfig`], sample its BEACON/DEMAND datasets (and, by default,
/// the DNS substrate), and run the full `cellspot` study.
///
/// This is the facade over [`cellspot::Pipeline`], which starts from
/// already-sampled datasets — use that one when you have your own logs
/// and must keep the ground-truth firewall (the study never sees the
/// generated world).
///
/// ```no_run
/// use cellspotting::{cellobs::Observer, worldgen::WorldConfig, Pipeline};
///
/// let obs = Observer::enabled();
/// let report = Pipeline::new(WorldConfig::mini())
///     .threads(4)
///     .observer(obs.clone())
///     .run()
///     .expect("default config is valid");
/// println!("{}", obs.snapshot().to_canonical_json());
/// # drop(report);
/// ```
pub struct Pipeline {
    config: WorldConfig,
    study_config: Option<StudyConfig>,
    threads: Option<usize>,
    observer: Observer,
    with_dns: bool,
}

impl Pipeline {
    /// Start a pipeline over the world described by `config`.
    pub fn new(config: WorldConfig) -> Self {
        Pipeline {
            config,
            study_config: None,
            threads: None,
            observer: Observer::disabled(),
            with_dns: true,
        }
    }

    /// Replace the default study configuration. The default scales the
    /// paper's rule-2 hit threshold to the world's size
    /// ([`WorldConfig::scaled_min_beacon_hits`]).
    pub fn study_config(mut self, cfg: StudyConfig) -> Self {
        self.study_config = Some(cfg);
        self
    }

    /// Pin the rayon pool (flag-level precedence: beats
    /// `CELLSPOT_THREADS`). Results never depend on the width.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Attach an observer; every stage reports spans and counters into
    /// it. The default disabled observer records nothing.
    pub fn observer(mut self, obs: Observer) -> Self {
        self.observer = obs;
        self
    }

    /// Skip the DNS substrate (the §6.3 resolver analyses are omitted
    /// from the study).
    pub fn without_dns(mut self) -> Self {
        self.with_dns = false;
        self
    }

    /// Run end to end: world → datasets → (DNS) → study.
    pub fn run(self) -> Result<PipelineReport, CellspotError> {
        let obs = self.observer;
        cellspot::configure_threads(cellspot::resolve_threads(self.threads));
        let world = worldgen::World::generate_with(self.config, &obs);
        let (beacons, demand) = cdnsim::generate_datasets_observed(&world, &obs);
        let dns = self.with_dns.then(|| dnssim::generate_dns(&world));
        let study_config = self.study_config.unwrap_or_else(|| {
            StudyConfig::default().with_min_hits(world.config.scaled_min_beacon_hits())
        });
        let mut pipeline = cellspot::Pipeline::new(&beacons, &demand)
            .as_db(&world.as_db)
            .carriers(&world.carriers)
            .study_config(study_config)
            .observer(obs.clone());
        if let Some(dns) = dns.as_ref() {
            pipeline = pipeline.dns(dns);
        }
        let study = pipeline.run()?.into_study();
        Ok(PipelineReport {
            world,
            beacons,
            demand,
            dns,
            study,
        })
    }
}

/// Everything a [`Pipeline`] run produces: the ground-truth world, the
/// sampled datasets, the optional DNS substrate, and the finished study.
pub struct PipelineReport {
    /// The generated ground-truth world (synthetic-substrate perk: real
    /// studies never see this).
    pub world: worldgen::World,
    /// Sampled BEACON dataset.
    pub beacons: cdnsim::BeaconDataset,
    /// Sampled DEMAND dataset.
    pub demand: cdnsim::DemandDataset,
    /// DNS substrate, unless [`Pipeline::without_dns`] was used.
    pub dns: Option<dnssim::DnsSim>,
    /// The full study output.
    pub study: Study,
}
