//! Carrier validation study (§4.2 of the paper): score the classifier
//! against the three carriers' ground-truth prefix lists, sweep the
//! cellular-ratio threshold, and print Table 3 plus the Fig. 3 curves.
//!
//! ```text
//! cargo run --release --example carrier_validation
//! ```

use cellspotting::cdnsim::generate_datasets;
use cellspotting::cellspot::{threshold_sweep, validate_carrier, BlockIndex, Classification};
use cellspotting::worldgen::{World, WorldConfig};

fn main() {
    let world = World::generate(WorldConfig::demo());
    let (beacons, demand) = generate_datasets(&world);
    let index = BlockIndex::build(&beacons, &demand);

    // The paper's operating point: a simple majority of NetInfo labels.
    let classification = Classification::with_default_threshold(&index);

    println!("-- Table 3: validation at threshold 0.5 --\n");
    println!(
        "{:<10} {:>7} {:>8} {:>8} {:>8} {:>8}  {:>9} {:>7} {:>6}",
        "carrier", "basis", "TP", "FP", "TN", "FN", "precision", "recall", "F1"
    );
    for gt in &world.carriers {
        let v = validate_carrier(gt, &classification, &index);
        for (basis, c) in [("CIDR", &v.by_cidr), ("demand", &v.by_demand)] {
            println!(
                "{:<10} {:>7} {:>8.1} {:>8.1} {:>8.1} {:>8.1}  {:>9.2} {:>7.2} {:>6.2}",
                v.carrier,
                basis,
                c.tp,
                c.fp,
                c.tn,
                c.fn_,
                c.precision(),
                c.recall(),
                c.f1()
            );
        }
    }

    println!("\n-- Figure 3: threshold sensitivity (demand-weighted F1) --\n");
    for gt in &world.carriers {
        let curve = threshold_sweep(gt, &index, 25);
        print!("{:<10} ", curve.carrier);
        for p in &curve.points {
            // A terminal sparkline: one glyph per threshold step.
            let glyph = match p.f1_demand {
                f if f > 0.95 => '#',
                f if f > 0.8 => '+',
                f if f > 0.5 => '-',
                f if f > 0.0 => '.',
                _ => ' ',
            };
            print!("{glyph}");
        }
        let stable = curve
            .stable_range(0.05)
            .map(|(lo, hi)| format!("stable [{lo:.2}, {hi:.2}]"))
            .unwrap_or_else(|| "no plateau".into());
        println!("  {stable}");
    }
    println!("\n(thresholds 0.04 … 1.00, left to right; paper: flat from 0.1 to 0.96)");
}
