//! Event-level measurement (§3.1 of the paper): walk the full causal
//! chain one page load at a time — device, browser, Network Information
//! API availability, tethering — and verify that aggregating raw beacons
//! reproduces the closed-form dataset the classifier normally consumes.
//!
//! ```text
//! cargo run --release --example event_level
//! ```

use cellspotting::cdnsim::{
    aggregate_events, generate_beacons, simulate_events, CdnConfig, ConnectionType, EventSimConfig,
};
use cellspotting::worldgen::{World, WorldConfig};

fn main() {
    let world = World::generate(WorldConfig::mini());
    let cfg = EventSimConfig {
        page_loads: 400_000,
        ..Default::default()
    };
    let events = simulate_events(&world, &cfg);
    println!("simulated {} page loads", events.len());

    // Per-browser NetInfo availability, straight from raw events.
    let mut by_browser: std::collections::HashMap<&str, (u64, u64)> = Default::default();
    for e in &events {
        let entry = by_browser.entry(e.browser.label()).or_default();
        entry.0 += 1;
        if e.connection.is_some() {
            entry.1 += 1;
        }
    }
    println!("\nbrowser           hits     netinfo");
    let mut rows: Vec<_> = by_browser.into_iter().collect();
    rows.sort_by_key(|(_, (hits, _))| std::cmp::Reverse(*hits));
    for (browser, (hits, netinfo)) in rows {
        println!("{browser:<16} {hits:>7}  {netinfo:>9}");
    }

    // ConnectionType mix among NetInfo-enabled hits.
    let mut conn: std::collections::HashMap<String, u64> = Default::default();
    let mut netinfo_total = 0u64;
    for e in &events {
        if let Some(c) = e.connection {
            *conn.entry(c.to_string()).or_default() += 1;
            netinfo_total += 1;
        }
    }
    println!("\nConnectionType mix ({netinfo_total} NetInfo hits):");
    let mut rows: Vec<_> = conn.into_iter().collect();
    rows.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    for (c, n) in rows {
        println!(
            "  {c:<10} {:>6.2}%",
            100.0 * n as f64 / netinfo_total as f64
        );
    }
    let cellular = events
        .iter()
        .filter(|e| e.connection == Some(ConnectionType::Cellular))
        .count();
    println!(
        "cellular labels: {:.1}% of NetInfo hits",
        100.0 * cellular as f64 / netinfo_total as f64
    );

    // Event-mode vs aggregate-mode convergence on well-sampled blocks.
    let event_ds = aggregate_events("2016-12", &events);
    let agg_ds = generate_beacons(&world, &CdnConfig::default());
    let mut compared = 0;
    let mut dev = 0.0;
    for r in event_ds.iter() {
        if r.netinfo_hits < 150 {
            continue;
        }
        if let (Some(er), Some(ar)) = (
            r.cellular_ratio(),
            agg_ds.get(r.block).and_then(|a| a.cellular_ratio()),
        ) {
            dev += (er - ar).abs();
            compared += 1;
        }
    }
    if compared > 0 {
        println!(
            "\nevent vs aggregate mode: mean |Δratio| = {:.3} over {compared} well-sampled blocks",
            dev / compared as f64
        );
    }
}
