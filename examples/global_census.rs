//! Global cellular census (§4.3, §5, §7 of the paper): classify the
//! whole synthetic Internet, identify cellular ASes through the filter
//! pipeline, and print the geographic rollups — Tables 4, 5, 6 and 8.
//!
//! ```text
//! cargo run --release --example global_census [-- demo|paper|mini]
//! ```

use cellspotting::netaddr::CONTINENTS;
use cellspotting::report::experiments as exp;
use cellspotting::worldgen::WorldConfig;
use cellspotting::Pipeline;

fn main() {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "demo".into());
    let config = match scale.as_str() {
        "mini" => WorldConfig::mini(),
        "paper" => WorldConfig::paper(),
        _ => WorldConfig::demo(),
    };

    eprintln!("generating {scale} world …");
    let report = Pipeline::new(config)
        .without_dns()
        .run()
        .expect("default config is valid");
    let world = &report.world;
    let study = &report.study;

    for artifact in [
        exp::table4_subnets(study),
        exp::table5_filters(study),
        exp::table6_cellular_ases(study, &world.as_db),
        exp::table8_continent_demand(study),
    ] {
        println!("{}", artifact.render());
    }

    // A continent-level comparison against ground truth, something no
    // real measurement study can do — a perk of the synthetic substrate.
    println!("-- detection vs ground truth (per continent cellular /24) --");
    let mut truth = [0usize; 6];
    for r in &world.blocks.records {
        if r.access.is_cellular() && r.block.is_v4() {
            if let Some(op) = world.operator(r.asn) {
                truth[op.continent.index()] += 1;
            }
        }
    }
    for c in CONTINENTS {
        let detected = study.view.subnets[c.index()].cell24;
        let t = truth[c.index()];
        println!(
            "{:<14} detected {:>8} of {:>8} ground-truth cellular /24s ({:.0}%)",
            c.name(),
            detected,
            t,
            100.0 * detected as f64 / t.max(1) as f64
        );
    }
}
