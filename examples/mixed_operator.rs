//! Deep dive into two operators (§6.1/§6.2 of the paper): the large
//! dedicated US network and the large mixed European network — Fig. 6's
//! ratio breakdowns and Fig. 8's demand concentration.
//!
//! ```text
//! cargo run --release --example mixed_operator
//! ```

use cellspotting::cellspot::{AsRatioBreakdown, SubnetDemandProfile};
use cellspotting::report::experiments::select_showcases;
use cellspotting::worldgen::WorldConfig;
use cellspotting::Pipeline;

fn main() {
    let report = Pipeline::new(WorldConfig::demo())
        .without_dns()
        .run()
        .expect("default config is valid");
    let world = &report.world;
    let study = &report.study;

    let (dedicated, mixed) = select_showcases(study, &world.as_db);

    for (label, asn) in [("dedicated US", dedicated), ("mixed EU", mixed)] {
        let Some(asn) = asn else {
            continue;
        };
        let rec = world.as_db.get(asn).expect("ranked ASes are in the db");
        let agg = &study.as_aggregates[&asn];
        println!("== {label}: {asn} ({}) ==", rec.name);
        println!(
            "blocks {:>6}, cellular blocks {:>5}, CFD {:.3}, cellular demand {:.1} DU",
            agg.blocks,
            agg.cell_blocks(),
            agg.cfd(),
            agg.cell_du
        );

        // Fig. 6: where do the subnets and the demand sit on the ratio
        // axis?
        let b = AsRatioBreakdown::build(asn, &study.index);
        println!("ratio    subnets≤r  demand≤r");
        for r in [0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 1.0] {
            println!(
                "{r:>5.2}   {:>8.3}  {:>8.3}",
                b.subnet_cdf.eval(r),
                b.demand_cdf.eval(r)
            );
        }

        // Fig. 8: demand concentration within each access label.
        let p = SubnetDemandProfile::build(asn, &study.index, &study.classification);
        println!(
            "cellular demand concentration: top-5 {:.1}%, top-25 {:.1}%; \
             99% of demand needs {} cellular vs {} fixed blocks",
            100.0 * p.cellular_top_share(5),
            100.0 * p.cellular_top_share(25),
            p.cellular_blocks_for_share(0.99),
            p.fixed_blocks_for_share(0.99)
        );
        if let (Some(c), Some(f)) = (p.cellular.first(), p.fixed.first()) {
            println!("largest cellular /24 carries {c:.2} DU; largest fixed {f:.2} DU");
        }
        println!();
    }
}
