//! Quickstart: generate a small synthetic world, sample the BEACON and
//! DEMAND datasets from it, run the Cell Spotting classification
//! pipeline, and print the headline findings.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cellspotting::cdnsim::generate_datasets;
use cellspotting::cellspot::{run_study, StudyConfig};
use cellspotting::worldgen::{World, WorldConfig};

fn main() {
    // 1. A synthetic Internet, ~1/50th of the paper's magnitudes. Every
    //    random quantity derives from the seed, so runs are reproducible.
    let config = WorldConfig::demo().with_seed(42);
    let min_hits = config.scaled_min_beacon_hits();
    let world = World::generate(config);
    let truth = world.summary();
    println!(
        "world: {} ASes ({} genuinely cellular), {} active /24 blocks, {} /48 blocks",
        truth.operators, truth.true_cellular_ases, truth.blocks24, truth.blocks48
    );

    // 2. The CDN's view: one month of RUM beacons with Network
    //    Information API labels, one smoothed week of request demand.
    let (beacons, demand) = generate_datasets(&world);
    println!(
        "BEACON: {} blocks / {} NetInfo hits; DEMAND: {} blocks / {:.0} DU",
        beacons.len(),
        beacons.netinfo_hits_total(),
        demand.len(),
        demand.total_du()
    );

    // 3. The paper's methodology, end to end.
    let study = run_study(
        &beacons,
        &demand,
        &world.as_db,
        &world.carriers,
        None,
        StudyConfig::default().with_min_hits(min_hits),
    );

    // 4. Headline findings (§1's summary list).
    let (cell24, cell48) = study.classification.block_counts();
    println!("\n-- findings --");
    println!(
        "cellular subnets: {cell24} /24 and {cell48} /48 (ground truth: {} and {})",
        truth.cell_blocks24, truth.cell_blocks48
    );
    let (c, r1, r2, r3) = study.filter.table5_counts();
    println!("cellular ASes: {c} candidates -> {r1} -> {r2} -> {r3} after the three filters");
    println!(
        "mixed operators: {:.1}% of cellular ASes (paper: 58.6%)",
        100.0 * study.mixed.mixed_fraction()
    );
    println!(
        "global cellular demand: {:.1}% of all traffic (paper: 16.2%)",
        study.view.global_cellular_pct()
    );
    for v in &study.validations {
        println!(
            "{}: precision {:.2}, CIDR recall {:.2}, demand recall {:.2}",
            v.carrier,
            v.by_cidr.precision(),
            v.by_cidr.recall(),
            v.by_demand.recall()
        );
    }
}
