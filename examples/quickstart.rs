//! Quickstart: generate a small synthetic world, sample the BEACON and
//! DEMAND datasets from it, run the Cell Spotting classification
//! pipeline, and print the headline findings.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cellspotting::worldgen::WorldConfig;
use cellspotting::Pipeline;

fn main() {
    // 1–3. One builder call: a synthetic Internet (~1/50th of the
    //    paper's magnitudes, reproducible from the seed), the CDN's
    //    BEACON/DEMAND view of it, and the paper's methodology end to
    //    end. `without_dns` skips the §6.3 resolver analyses.
    let report = Pipeline::new(WorldConfig::demo().with_seed(42))
        .without_dns()
        .run()
        .expect("default config is valid");
    let truth = report.world.summary();
    println!(
        "world: {} ASes ({} genuinely cellular), {} active /24 blocks, {} /48 blocks",
        truth.operators, truth.true_cellular_ases, truth.blocks24, truth.blocks48
    );
    println!(
        "BEACON: {} blocks / {} NetInfo hits; DEMAND: {} blocks / {:.0} DU",
        report.beacons.len(),
        report.beacons.netinfo_hits_total(),
        report.demand.len(),
        report.demand.total_du()
    );
    let study = &report.study;

    // 4. Headline findings (§1's summary list).
    let (cell24, cell48) = study.classification.block_counts();
    println!("\n-- findings --");
    println!(
        "cellular subnets: {cell24} /24 and {cell48} /48 (ground truth: {} and {})",
        truth.cell_blocks24, truth.cell_blocks48
    );
    let (c, r1, r2, r3) = study.filter.table5_counts();
    println!("cellular ASes: {c} candidates -> {r1} -> {r2} -> {r3} after the three filters");
    println!(
        "mixed operators: {:.1}% of cellular ASes (paper: 58.6%)",
        100.0 * study.mixed.mixed_fraction()
    );
    println!(
        "global cellular demand: {:.1}% of all traffic (paper: 16.2%)",
        study.view.global_cellular_pct()
    );
    for v in &study.validations {
        println!(
            "{}: precision {:.2}, CIDR recall {:.2}, demand recall {:.2}",
            v.carrier,
            v.by_cidr.precision(),
            v.by_cidr.recall(),
            v.by_demand.recall()
        );
    }
}
