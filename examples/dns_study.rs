//! DNS resolver study (§6.3 of the paper): resolver sharing in mixed
//! networks, the distant-resolver pathology, and public DNS usage per
//! operator — Fig. 9 and Fig. 10.
//!
//! ```text
//! cargo run --release --example dns_study
//! ```

use cellspotting::dnssim::ResolverKind;
use cellspotting::report::experiments as exp;
use cellspotting::worldgen::WorldConfig;
use cellspotting::Pipeline;

fn main() {
    let report = Pipeline::new(WorldConfig::demo())
        .run()
        .expect("default config is valid");
    let world = &report.world;
    let dns = report
        .dns
        .as_ref()
        .expect("pipeline includes DNS by default");
    println!(
        "resolver population: {} resolvers, {} client-block affinities",
        dns.resolvers.len(),
        dns.affinities.len()
    );
    let study = &report.study;

    println!("{}", exp::fig9_resolver_sharing(study, dns).render());
    println!(
        "{}",
        exp::fig10_public_dns(study, dns, &world.as_db).render()
    );

    // The paper's Brazilian example: shared resolvers whose cellular
    // clients are 1,470 miles away while fixed clients sit nearby.
    let analysis = study.dns.as_ref().expect("study ran with DNS data");
    let mixed = study.mixed.mixed_asns();
    let distant = analysis.distant_shared_resolvers(dns, &mixed, 5.0);
    println!("-- distant shared resolvers (≥5x farther from cellular clients) --");
    for id in distant.iter().take(5) {
        let r = dns.resolver(*id);
        let d = &analysis.per_resolver[*id as usize];
        println!(
            "resolver {:>5} in {}: cellular clients {:>6.0} mi away, fixed {:>4.0} mi; \
             cellular share of demand {:.2}",
            r.id,
            r.asn,
            r.dist_cell_mi,
            r.dist_fixed_mi,
            d.cellular_fraction()
        );
    }
    println!("({} such resolvers in total)", distant.len());

    // Sanity: public fronts are never "shared operator resolvers".
    let public = dns
        .resolvers
        .iter()
        .filter(|r| matches!(r.kind, ResolverKind::Public(_)))
        .count();
    println!("\npublic resolver fronts: {public}");
}
